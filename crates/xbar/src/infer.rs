//! Full crossbar inference: executing network layers end to end on the
//! bit-serial simulator.
//!
//! [`crate::engine`] evaluates networks in the weight domain (fast, used
//! for whole-test-set accuracy); this module runs the *actual datapath* —
//! im2col unfold, per-patch quantisation, bit-serial MVM through ADCs,
//! dequantise — so small models can be validated on the real simulated
//! hardware path. The two agree to within quantisation error because the
//! tile datapath is integer-exact (proven in `tile`/`mapping` tests).
//!
//! Activation functions and pooling run in the digital domain, as they do
//! in ISAAC-style accelerators (sigmoid/maxpool units per tile).
//!
//! Because these wrappers share the compiled engine's step
//! implementations, they inherit the sparsity-aware packed datapath: the
//! im2col batch is packed (with its occupancy index) once per mapped row
//! block, and mostly-zero post-ReLU patches dispatch to the
//! occupancy-indexed popcount kernel — bitwise identical to the dense
//! kernel, including ADC saturation and all modeled hardware counters.

use crate::adc::Adc;
use crate::mapping::MappedLayer;
use crate::program::{conv_forward, linear_forward, StepScratch};
use crate::{Result, XbarError};
use tinyadc_nn::ParamKind;
use tinyadc_tensor::{Conv2dGeometry, Tensor};

/// Runs a convolution on the crossbar datapath.
///
/// `input` is one sample `[c, h, w]`; the mapped layer must hold a conv
/// weight `[f, c, kh, kw]`. Returns `[f, oh, ow]`. Non-negative
/// (post-ReLU) inputs stream single-pass; signed inputs stream
/// differentially (see [`crate::program`]).
///
/// The whole im2col matrix shares one input quantisation scale, matching
/// the per-layer activation quantisation of ISAAC-style designs. This is
/// a thin per-call wrapper over the compiled execution engine's conv
/// step; for repeated inference, compile a
/// [`crate::program::CompiledModel`] and reuse its workspace instead.
///
/// # Errors
///
/// Returns [`XbarError::InvalidConfig`] when the mapped layer is not a
/// conv or shapes disagree (including mapped-matrix dimensions that do
/// not match the conv geometry — checked in release builds too);
/// propagates quantisation/MVM errors.
pub fn conv2d(
    mapped: &MappedLayer,
    input: &Tensor,
    stride: usize,
    padding: usize,
    adc: &Adc,
) -> Result<Tensor> {
    let dims = mapped.param_dims();
    let (f, c, kh, kw) = match (mapped.kind(), dims) {
        (ParamKind::ConvWeight, &[f, c, kh, kw]) => (f, c, kh, kw),
        _ => {
            return Err(XbarError::InvalidConfig(format!(
                "conv2d needs a mapped conv weight, got {:?} {dims:?}",
                mapped.kind()
            )))
        }
    };
    if input.rank() != 3 || input.dims()[0] != c {
        return Err(XbarError::InvalidConfig(format!(
            "conv2d input must be [{c}, h, w], got {:?}",
            input.dims()
        )));
    }
    let g = Conv2dGeometry::new(c, input.dims()[1], input.dims()[2], kh, kw, stride, padding)?;
    let (rows, out_cols) = mapped.matrix_dims();
    if rows != g.patch_len() || out_cols != f {
        return Err(XbarError::InvalidConfig(format!(
            "mapped matrix is {rows}x{out_cols} but the conv geometry needs {}x{f} \
             (was the layer mapped from a different weight shape?)",
            g.patch_len()
        )));
    }
    let mut scratch = StepScratch::default();
    let mut out = Vec::new();
    conv_forward(
        mapped,
        &g,
        adc,
        None,
        input.as_slice(),
        &mut scratch,
        &mut out,
        None,
    )?;
    Ok(Tensor::from_vec(out, &[f, g.out_h, g.out_w])?)
}

/// Runs a fully-connected layer on the crossbar datapath: input `[in]`,
/// output `[out]`. A thin per-call wrapper over the compiled execution
/// engine's linear step (see [`conv2d`] on input signs and reuse). Even
/// this batch-of-one path fans work over the worker pool: the batched
/// tile kernel chunks the flat (input × column) grid, so a single input
/// still parallelises across output columns.
///
/// # Errors
///
/// Returns [`XbarError::InvalidConfig`] for non-linear mapped layers or
/// input lengths that do not match the mapped matrix; propagates
/// quantisation/MVM errors.
pub fn linear(mapped: &MappedLayer, input: &Tensor, adc: &Adc) -> Result<Tensor> {
    if mapped.kind() != ParamKind::LinearWeight {
        return Err(XbarError::InvalidConfig(
            "linear needs a mapped linear weight".into(),
        ));
    }
    let (rows, _) = mapped.matrix_dims();
    if input.len() != rows {
        return Err(XbarError::InvalidConfig(format!(
            "linear input must have {rows} elements, got {}",
            input.len()
        )));
    }
    let mut scratch = StepScratch::default();
    let mut out = Vec::new();
    linear_forward(
        mapped,
        adc,
        None,
        input.as_slice(),
        &mut scratch,
        &mut out,
        None,
    )?;
    let len = out.len();
    Ok(Tensor::from_vec(out, &[len])?)
}

/// Digital-domain ReLU (runs in the tile's post-processing units).
pub fn relu(t: &Tensor) -> Tensor {
    t.map(|x| x.max(0.0))
}

/// Digital-domain global average pool: `[c, h, w] -> [c]`.
///
/// # Errors
///
/// Returns [`XbarError::InvalidConfig`] for non-rank-3 input.
pub fn global_avg_pool(t: &Tensor) -> Result<Tensor> {
    let dims = t.dims();
    if dims.len() != 3 {
        return Err(XbarError::InvalidConfig(format!(
            "global_avg_pool needs [c, h, w], got {dims:?}"
        )));
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let hw = (h * w) as f32;
    let mut out = vec![0.0f32; c];
    for (ci, o) in out.iter_mut().enumerate() {
        *o = t.as_slice()[ci * h * w..(ci + 1) * h * w]
            .iter()
            .sum::<f32>()
            / hw;
    }
    Ok(Tensor::from_vec(out, &[c])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantConfig;
    use crate::tile::XbarConfig;
    use tinyadc_prune::CrossbarShape;
    use tinyadc_tensor::im2col;
    use tinyadc_tensor::rng::SeededRng;

    fn cfg() -> XbarConfig {
        XbarConfig {
            shape: CrossbarShape::new(32, 16).unwrap(),
            quant: QuantConfig {
                weight_bits: 8,
                input_bits: 8,
            },
            ..XbarConfig::paper_default()
        }
    }

    /// Float reference convolution for validation.
    fn conv_ref(w: &Tensor, x: &Tensor, stride: usize, padding: usize) -> Tensor {
        let &[f, c, kh, kw] = w.dims() else { panic!() };
        let g = Conv2dGeometry::new(c, x.dims()[1], x.dims()[2], kh, kw, stride, padding).unwrap();
        let cols = im2col(x, &g).unwrap();
        let w2d = w.reshape(&[f, g.patch_len()]).unwrap();
        w2d.matmul(&cols)
            .unwrap()
            .reshape(&[f, g.out_h, g.out_w])
            .unwrap()
    }

    #[test]
    fn crossbar_conv_matches_float_reference_within_quant_error() {
        let mut rng = SeededRng::new(41);
        let w = Tensor::randn(&[8, 3, 3, 3], 0.4, &mut rng);
        let x = Tensor::uniform(&[3, 8, 8], 0.0, 1.0, &mut rng);
        let mapped = MappedLayer::from_param(&w, ParamKind::ConvWeight, cfg()).unwrap();
        let adc = Adc::new(mapped.required_adc_bits()).unwrap();
        let sim = conv2d(&mapped, &x, 1, 1, &adc).unwrap();
        let reference = conv_ref(&w, &x, 1, 1);
        assert_eq!(sim.dims(), reference.dims());
        let scale = reference.abs_max().max(1.0);
        for (a, b) in sim.as_slice().iter().zip(reference.as_slice()) {
            assert!(
                (a - b).abs() < 0.03 * scale,
                "sim {a} vs ref {b} (scale {scale})"
            );
        }
    }

    #[test]
    fn strided_conv_shapes() {
        let mut rng = SeededRng::new(42);
        let w = Tensor::randn(&[4, 2, 3, 3], 0.4, &mut rng);
        let x = Tensor::uniform(&[2, 8, 8], 0.0, 1.0, &mut rng);
        let mapped = MappedLayer::from_param(&w, ParamKind::ConvWeight, cfg()).unwrap();
        let adc = Adc::new(mapped.required_adc_bits()).unwrap();
        let y = conv2d(&mapped, &x, 2, 1, &adc).unwrap();
        assert_eq!(y.dims(), &[4, 4, 4]);
    }

    #[test]
    fn two_layer_crossbar_cnn_matches_float_network() {
        // conv -> relu -> gap -> linear, fully on the simulated datapath,
        // vs the float pipeline.
        let mut rng = SeededRng::new(43);
        let wc = Tensor::randn(&[6, 3, 3, 3], 0.4, &mut rng);
        let wl = Tensor::randn(&[4, 6], 0.5, &mut rng);
        let x = Tensor::uniform(&[3, 6, 6], 0.0, 1.0, &mut rng);

        let mc = MappedLayer::from_param(&wc, ParamKind::ConvWeight, cfg()).unwrap();
        let ml = MappedLayer::from_param(&wl, ParamKind::LinearWeight, cfg()).unwrap();
        let adc_c = Adc::new(mc.required_adc_bits()).unwrap();
        let adc_l = Adc::new(ml.required_adc_bits()).unwrap();

        let h = relu(&conv2d(&mc, &x, 1, 1, &adc_c).unwrap());
        let pooled = global_avg_pool(&h).unwrap();
        let sim_logits = linear(&ml, &pooled, &adc_l).unwrap();

        // Float reference.
        let h_ref = conv_ref(&wc, &x, 1, 1).map(|v| v.max(0.0));
        let pooled_ref = global_avg_pool(&h_ref).unwrap();
        let ref_logits = wl.matvec(&pooled_ref).unwrap();

        assert_eq!(sim_logits.dims(), ref_logits.dims());
        let scale = ref_logits.abs_max().max(0.5);
        for (a, b) in sim_logits.as_slice().iter().zip(ref_logits.as_slice()) {
            assert!((a - b).abs() < 0.05 * scale, "sim {a} vs ref {b}");
        }
    }

    #[test]
    fn kind_mismatches_rejected() {
        let mut rng = SeededRng::new(44);
        let wl = Tensor::randn(&[4, 6], 0.5, &mut rng);
        let ml = MappedLayer::from_param(&wl, ParamKind::LinearWeight, cfg()).unwrap();
        let adc = Adc::new(8).unwrap();
        assert!(conv2d(&ml, &Tensor::zeros(&[3, 4, 4]), 1, 1, &adc).is_err());

        let wc = Tensor::randn(&[4, 2, 3, 3], 0.5, &mut rng);
        let mc = MappedLayer::from_param(&wc, ParamKind::ConvWeight, cfg()).unwrap();
        assert!(linear(&mc, &Tensor::zeros(&[18]), &adc).is_err());
        // Wrong channel count.
        assert!(conv2d(&mc, &Tensor::zeros(&[3, 4, 4]), 1, 1, &adc).is_err());
    }

    #[test]
    fn digital_helpers() {
        let t = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0.0, 2.0]);
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 2, 2]).unwrap();
        assert_eq!(global_avg_pool(&x).unwrap().as_slice(), &[4.0]);
        assert!(global_avg_pool(&t).is_err());
    }
}
