//! # tinyadc-xbar
//!
//! ReRAM crossbar simulator for the TinyADC reproduction: the mixed-signal
//! substrate the paper's accelerator evaluation rests on.
//!
//! What it models, following the paper §II-B and §III-C:
//!
//! * **Weight quantisation and bit slicing** — weights are quantised to
//!   signed fixed point and their magnitudes sliced across multiple 2-bit
//!   MLC ReRAM cells; signs use differential (positive/negative) column
//!   pairs ([`quant`], [`cell`]).
//! * **Tiled mapping** — a layer's 2-D weight matrix is tiled into
//!   crossbar-sized blocks, ragged edges included ([`mapping`]).
//! * **Bit-serial analog MVM** — inputs stream through 1-bit DACs cycle by
//!   cycle; column currents are digitised by ADCs and recombined with
//!   shift-and-add ([`tile`]). The arithmetic is carried on integer
//!   lattices, so the paper's "no computational inaccuracy" claim is
//!   checkable with `==`. The hot path runs on a bit-plane-packed
//!   popcount kernel (cell levels and DAC bits packed into `u64` row
//!   bitmasks) that is bitwise identical to the reference loop —
//!   [`tile::Tile::matvec_loop`] — including ADC saturation. Packed
//!   batches carry a word-granular occupancy index ([`PackedInputs`]),
//!   so mostly-zero post-ReLU activations dispatch to an
//!   occupancy-indexed kernel ([`PackedKernel`]) that skips all-zero
//!   planes and words while remaining bitwise identical.
//! * **The ADC resolution rule (Eq. 1)** — and its exact counterpart
//!   derived from the worst-case column sum ([`adc`]).
//! * **Stuck-at faults and device variation** — SA0/SA1 cell faults and
//!   lognormal conductance variation ([`fault`], [`cell`]).
//! * **Fault repair** — per-tile fault triage, spare-column remapping and
//!   CP-slack redistribution masks ([`repair`]).
//!
//! # Example: lossless ADC reduction on a CP-pruned block
//!
//! ```
//! use tinyadc_prune::{CpConstraint, CrossbarShape};
//! use tinyadc_xbar::adc::required_adc_bits_paper;
//!
//! // 128-row crossbar, 1-bit DAC, 2-bit cells: 9 bits required unpruned.
//! assert_eq!(required_adc_bits_paper(1, 2, 128), 9);
//! // 32x column-proportional pruning leaves 4 active rows: 4 bits suffice.
//! assert_eq!(required_adc_bits_paper(1, 2, 4), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod obs;
mod packed;

pub mod activity;
pub mod adc;
pub mod cell;
pub mod engine;
pub mod fault;
pub mod infer;
pub mod mapping;
pub mod noise;
pub mod program;
pub mod quant;
pub mod repair;
pub mod snapshot;
pub mod tile;

pub use error::XbarError;
pub use packed::{packed_kernel, set_packed_kernel, PackedInputs, PackedKernel};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, XbarError>;
