//! Compile-once/run-many execution engine for the crossbar datapath.
//!
//! ISAAC-style accelerators program their crossbars once and then stream
//! inputs through fixed peripherals; re-mapping weights per request (what
//! calling [`crate::mapping::MappedLayer::from_param`] before every
//! [`crate::infer`] call amounts to) has no hardware analogue. This
//! module captures that split:
//!
//! * **Compile** ([`CompiledModel::compile`]) walks a trained
//!   [`Network`]'s [`LayerSpec`] graph once, maps every conv/linear
//!   weight onto crossbar tiles with packed bit planes, folds batch-norm
//!   into per-channel scale/shift, sizes a per-layer [`Adc`], optionally
//!   bakes in stuck-at faults and spare-column repair, and emits a flat
//!   program of steps over activation *slots*.
//! * **Run** ([`CompiledModel::run`] / [`CompiledModel::run_batch`])
//!   executes that program. All scratch — the im2col buffer, quantised
//!   code buffers, packed DAC bit planes, per-slot activations — lives in
//!   a caller-owned [`Workspace`], so once buffer capacities have grown
//!   to the model's high-water mark (the first call), steady-state runs
//!   perform **zero heap allocation**.
//!
//! Negative inputs (the raw image fed to the first layer) are handled by
//! differential input streaming: the positive and negated-negative halves
//! share one quantisation scale and run as two unsigned MVMs whose
//! digitised results are subtracted — the input-side analogue of the
//! differential column pairs that carry weight signs. Post-ReLU layers
//! take the ordinary single-pass path, bitwise identical to
//! [`crate::infer`].
//!
//! Batched runs fan samples out over `tinyadc-par` with one workspace per
//! sample; chunk boundaries depend only on the batch size and per-sample
//! execution is exact integer arithmetic, so results are bitwise
//! invariant under the worker-thread count.

use crate::adc::Adc;
use crate::fault::{FaultModel, FaultReport, LayerFaultMap};
use crate::mapping::{BatchScratch, MappedLayer};
use crate::noise::{NoiseCtx, NonIdealPolicy};
use crate::quant::{quantize_input_codes_into, quantize_input_signed_into};
use crate::repair;
use crate::tile::XbarConfig;
use crate::{Result, XbarError};
use tinyadc_nn::{LayerSpec, Network, Param, ParamKind};
use tinyadc_tensor::rng::SeededRng;
use tinyadc_tensor::{im2col_slice_into, Conv2dGeometry, Tensor};

/// Stuck-at-fault state to bake into a compiled program: every crossbar
/// layer samples faults from `model` (deterministically from `seed`) at
/// compile time, optionally repairing harmful columns with per-tile
/// spares, exactly as the offline resilience campaign does.
#[derive(Debug, Clone)]
pub struct FaultPolicy {
    /// Stuck-at rates.
    pub model: FaultModel,
    /// Spare columns per tile for repair; `0` leaves faults unrepaired.
    pub spares_per_tile: usize,
    /// RNG seed for fault placement (one stream across all layers).
    pub seed: u64,
}

/// Compile-time options for [`CompiledModel::compile`].
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Fixed ADC resolution for every layer; `None` sizes each layer's
    /// ADC to its own worst-case activated rows (the paper's Eq. 1).
    pub adc_bits: Option<u32>,
    /// Optional stuck-at faults (and repair) baked into the tiles.
    pub faults: Option<FaultPolicy>,
    /// Optional device non-idealities (IR drop / read noise) the instance
    /// runs under; composes with `faults` (faults change what is
    /// programmed, the non-ideal policy perturbs every read) and can be
    /// changed later per instance via [`CompiledModel::set_non_ideal`].
    pub non_ideal: Option<NonIdealPolicy>,
}

/// One crossbar layer of a compiled program, for reporting.
#[derive(Debug, Clone)]
pub struct CrossbarSummary {
    /// Source parameter name.
    pub name: String,
    /// Crossbar blocks the mapped matrix occupies.
    pub blocks: usize,
    /// ADC resolution the program samples this layer at.
    pub adc_bits: u32,
}

/// Scratch for one crossbar MVM: quantised code buffers (differential
/// pair), packed bit planes, and integer outputs. Every buffer is resized
/// in place, so capacities persist across calls.
#[derive(Debug, Default)]
pub(crate) struct StepScratch {
    /// im2col unfold of the layer input.
    pub(crate) cols: Vec<f32>,
    /// Positive-half input codes.
    codes: Vec<u64>,
    /// Negated-negative-half input codes (differential streaming).
    neg_codes: Vec<u64>,
    /// Shared packed DAC planes + occupancy index (packed once per row
    /// block and reused by every column tile; the signed differential
    /// path packs the pos and neg halves through the same buffers) +
    /// per-tile partial sums.
    batch: BatchScratch,
    /// Integer MVM outputs, input-major.
    y: Vec<i64>,
    /// Integer MVM outputs of the negative half.
    y_neg: Vec<i64>,
}

impl StepScratch {
    fn bytes(&self) -> usize {
        self.cols.len() * 4
            + (self.codes.len() + self.neg_codes.len()) * 8
            + self.batch.bytes()
            + (self.y.len() + self.y_neg.len()) * 8
    }
}

/// Reusable per-sample execution state: crossbar scratch plus one
/// activation buffer per program slot. Create once, pass to every
/// [`CompiledModel::run`]; after the first call all buffers have reached
/// the model's high-water capacity and later runs allocate nothing.
#[derive(Debug, Default)]
pub struct Workspace {
    step: StepScratch,
    acts: Vec<Vec<f32>>,
    error: Option<XbarError>,
}

impl Workspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently held by the live portions of all buffers —
    /// constant in steady state, which is what the
    /// `program.workspace.bytes` gauge reports.
    pub fn bytes(&self) -> usize {
        self.step.bytes() + self.acts.iter().map(|a| a.len() * 4).sum::<usize>()
    }
}

/// Per-sample workspaces for [`CompiledModel::run_batch`]; grows to the
/// largest batch seen and is reused across calls.
#[derive(Debug, Default)]
pub struct BatchWorkspace {
    samples: Vec<Workspace>,
}

impl BatchWorkspace {
    /// An empty batch workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes across all per-sample workspaces.
    pub fn bytes(&self) -> usize {
        self.samples.iter().map(Workspace::bytes).sum()
    }
}

/// A crossbar conv/linear step: the mapped tiles, the peripheral ADC, and
/// the digital bias. Crate-visible so the snapshot codec
/// ([`crate::snapshot`]) can persist and rebuild programs field by field.
#[derive(Debug)]
pub(crate) struct CrossbarStep {
    pub(crate) mapped: MappedLayer,
    pub(crate) adc: Adc,
    pub(crate) bias: Option<Vec<f32>>,
    pub(crate) in_slot: usize,
    pub(crate) out_slot: usize,
}

/// One instruction of a compiled program. Crossbar steps run on the
/// bit-serial datapath; the rest run in the digital domain, as they do in
/// ISAAC-style accelerators. Crate-visible for the snapshot codec.
#[derive(Debug)]
pub(crate) enum Step {
    /// `to = from` (protects a residual input from in-place ops).
    Copy {
        from: usize,
        to: usize,
    },
    Conv {
        step: Box<CrossbarStep>,
        geometry: Conv2dGeometry,
    },
    Linear {
        step: Box<CrossbarStep>,
    },
    /// In-place `max(x, 0)`.
    Relu {
        slot: usize,
    },
    /// In-place folded batch-norm: `x * scale[c] + shift[c]` per channel
    /// of `plane` spatial elements.
    BatchNorm {
        slot: usize,
        plane: usize,
        scale: Vec<f32>,
        shift: Vec<f32>,
    },
    MaxPool {
        in_slot: usize,
        out_slot: usize,
        channels: usize,
        in_h: usize,
        in_w: usize,
        window: usize,
    },
    GlobalAvgPool {
        in_slot: usize,
        out_slot: usize,
        channels: usize,
        plane: usize,
    },
    /// `a = relu(a + b)` (residual join).
    AddRelu {
        a: usize,
        b: usize,
    },
}

/// A network compiled for the crossbar datapath: crossbars programmed,
/// peripherals fixed, ready to stream any number of inputs through
/// [`Self::run`] / [`Self::run_batch`].
#[derive(Debug)]
pub struct CompiledModel {
    name: String,
    input_dims: Vec<usize>,
    input_vol: usize,
    output_len: usize,
    steps: Vec<Step>,
    n_slots: usize,
    out_slot: usize,
    config: XbarConfig,
    crossbar: Vec<CrossbarSummary>,
    fault_report: FaultReport,
    remapped_columns: usize,
    unrepaired_columns: usize,
    /// Modeled ADC conversions one sample performs (compile-time, ≥ 1).
    sample_cost: u64,
    /// Modeled SAR ADC cycles one sample performs (conversions × bits, ≥ 1).
    sample_sar_cycles: u64,
    /// Per-instance device non-idealities (None ⇒ ideal reads).
    non_ideal: Option<NonIdealPolicy>,
}

/// Modeled ADC conversions one sample streams through `steps` — the same
/// quantity the `xbar.adc.conversions` counter charges at run time, but
/// computed from shapes alone (tiles × cycles × columns, scaled by the
/// conv patch count). Digital steps are free next to the bit-serial
/// datapath and contribute nothing. Clamped to ≥ 1 so it can divide.
pub(crate) fn modeled_sample_conversions(steps: &[Step]) -> u64 {
    steps
        .iter()
        .map(|s| match s {
            Step::Conv { step, geometry } => {
                crate::activity::layer_activity(&step.mapped).adc_conversions
                    * geometry.patch_count() as u64
            }
            Step::Linear { step } => crate::activity::layer_activity(&step.mapped).adc_conversions,
            _ => 0,
        })
        .sum::<u64>()
        .max(1)
}

/// Modeled SAR ADC cycles one sample streams through `steps`: each
/// conversion costs one internal cycle per resolved bit (`tinyadc-hw`'s
/// latency model), so a CP-pruned program with smaller per-layer ADCs is
/// proportionally faster than its dense sibling *per conversion* — the
/// request-level latency lever the serving front-end prices batches
/// with. Clamped to ≥ 1 so it can divide.
pub(crate) fn modeled_sample_sar_cycles(steps: &[Step]) -> u64 {
    steps
        .iter()
        .map(|s| match s {
            Step::Conv { step, geometry } => {
                crate::activity::layer_activity(&step.mapped).adc_conversions
                    * geometry.patch_count() as u64
                    * u64::from(step.adc.bits())
            }
            Step::Linear { step } => {
                crate::activity::layer_activity(&step.mapped).adc_conversions
                    * u64::from(step.adc.bits())
            }
            _ => 0,
        })
        .sum::<u64>()
        .max(1)
}

struct Compiler<'a> {
    config: XbarConfig,
    options: &'a CompileOptions,
    rng: Option<SeededRng>,
    steps: Vec<Step>,
    n_slots: usize,
    crossbar: Vec<CrossbarSummary>,
    fault_report: FaultReport,
    remapped_columns: usize,
    unrepaired_columns: usize,
}

impl Compiler<'_> {
    fn alloc_slot(&mut self) -> usize {
        self.n_slots += 1;
        self.n_slots - 1
    }

    /// Returns a slot safe to mutate in place: `slot` itself when the
    /// caller owns it, otherwise a fresh slot filled by a `Copy` step.
    fn writable(&mut self, slot: usize, mutable: bool) -> usize {
        if mutable {
            return slot;
        }
        let to = self.alloc_slot();
        self.steps.push(Step::Copy { from: slot, to });
        to
    }

    /// Maps a weight parameter onto tiles, bakes in the fault policy, and
    /// sizes its ADC.
    fn map_weight(&mut self, weight: &Param) -> Result<(MappedLayer, Adc)> {
        let mut mapped = MappedLayer::from_param(&weight.value, weight.kind, self.config)?;
        if let Some(policy) = &self.options.faults {
            let rng = self.rng.as_mut().expect("rng exists when faults are set");
            let map = LayerFaultMap::sample(&mapped, &policy.model, rng);
            if policy.spares_per_tile > 0 {
                let outcome = repair::apply_with_spares(&mut mapped, &map, policy.spares_per_tile);
                self.fault_report.merge(&outcome.faults);
                self.remapped_columns += outcome.remapped_columns;
                self.unrepaired_columns += outcome.unrepaired_columns;
            } else {
                self.fault_report.merge(&map.apply(&mut mapped));
            }
        }
        let bits = self
            .options
            .adc_bits
            .unwrap_or_else(|| mapped.required_adc_bits());
        let adc = Adc::new(bits)?;
        self.crossbar.push(CrossbarSummary {
            name: weight.name.clone(),
            blocks: mapped.block_count(),
            adc_bits: adc.bits(),
        });
        Ok((mapped, adc))
    }

    /// Lowers `spec` starting from activations in `slot` of `shape`;
    /// returns the output (slot, shape, whether the caller may mutate the
    /// output slot in place). `mutable == false` protects `slot` — any
    /// in-place op copies to a fresh slot first — which residual blocks
    /// use to keep their join input alive across the main branch.
    fn lower(
        &mut self,
        spec: &LayerSpec<'_>,
        slot: usize,
        shape: Vec<usize>,
        mutable: bool,
    ) -> Result<(usize, Vec<usize>, bool)> {
        match spec {
            LayerSpec::Chain(children) => {
                let (mut s, mut sh, mut m) = (slot, shape, mutable);
                for child in children {
                    (s, sh, m) = self.lower(child, s, sh, m)?;
                }
                Ok((s, sh, m))
            }
            LayerSpec::Identity => Ok((slot, shape, mutable)),
            LayerSpec::Flatten => Ok((slot, vec![shape.iter().product()], mutable)),
            LayerSpec::Relu => {
                let slot = self.writable(slot, mutable);
                self.steps.push(Step::Relu { slot });
                Ok((slot, shape, true))
            }
            LayerSpec::BatchNorm2d {
                gamma,
                beta,
                running_mean,
                running_var,
                eps,
            } => {
                let [c, h, w] = expect_chw(&shape, "BatchNorm2d")?;
                if gamma.value.dims() != [c] {
                    return Err(XbarError::InvalidConfig(format!(
                        "batch-norm expects {c} channels, got {:?}",
                        gamma.value.dims()
                    )));
                }
                // Fold the eval-mode affine transform into one per-channel
                // scale/shift: y = gamma * (x - mean) * inv_std + beta.
                let (g, b) = (gamma.value.as_slice(), beta.value.as_slice());
                let (mean, var) = (running_mean.value.as_slice(), running_var.value.as_slice());
                let mut scale = Vec::with_capacity(c);
                let mut shift = Vec::with_capacity(c);
                for ci in 0..c {
                    let inv_std = 1.0 / (var[ci] + eps).sqrt();
                    scale.push(g[ci] * inv_std);
                    shift.push(b[ci] - mean[ci] * g[ci] * inv_std);
                }
                let slot = self.writable(slot, mutable);
                self.steps.push(Step::BatchNorm {
                    slot,
                    plane: h * w,
                    scale,
                    shift,
                });
                Ok((slot, shape, true))
            }
            LayerSpec::Conv2d {
                weight,
                bias,
                stride,
                padding,
            } => {
                let [c, h, w] = expect_chw(&shape, "Conv2d")?;
                let &[f, wc, kh, kw] = weight.value.dims() else {
                    return Err(XbarError::InvalidConfig(format!(
                        "conv weight must be [f, c, kh, kw], got {:?}",
                        weight.value.dims()
                    )));
                };
                if wc != c {
                    return Err(XbarError::InvalidConfig(format!(
                        "conv '{}' expects {wc} input channels, activations have {c}",
                        weight.name
                    )));
                }
                let geometry = Conv2dGeometry::new(c, h, w, kh, kw, *stride, *padding)?;
                let (mapped, adc) = self.map_weight(weight)?;
                check_matrix_dims(&mapped, geometry.patch_len(), f, &weight.name)?;
                let bias = bias_vec(*bias, f)?;
                let out_slot = self.alloc_slot();
                let out_shape = vec![f, geometry.out_h, geometry.out_w];
                self.steps.push(Step::Conv {
                    step: Box::new(CrossbarStep {
                        mapped,
                        adc,
                        bias,
                        in_slot: slot,
                        out_slot,
                    }),
                    geometry,
                });
                Ok((out_slot, out_shape, true))
            }
            LayerSpec::Linear { weight, bias } => {
                let &[out_f, in_f] = weight.value.dims() else {
                    return Err(XbarError::InvalidConfig(format!(
                        "linear weight must be [out, in], got {:?}",
                        weight.value.dims()
                    )));
                };
                if shape != [in_f] {
                    return Err(XbarError::InvalidConfig(format!(
                        "linear '{}' expects flat [{in_f}] input, activations are {shape:?} \
                         (missing Flatten/GlobalAvgPool?)",
                        weight.name
                    )));
                }
                let (mapped, adc) = self.map_weight(weight)?;
                check_matrix_dims(&mapped, in_f, out_f, &weight.name)?;
                let bias = bias_vec(*bias, out_f)?;
                let out_slot = self.alloc_slot();
                self.steps.push(Step::Linear {
                    step: Box::new(CrossbarStep {
                        mapped,
                        adc,
                        bias,
                        in_slot: slot,
                        out_slot,
                    }),
                });
                Ok((out_slot, vec![out_f], true))
            }
            LayerSpec::MaxPool2d { window } => {
                let [c, h, w] = expect_chw(&shape, "MaxPool2d")?;
                let k = *window;
                if k == 0 || h < k || w < k {
                    return Err(XbarError::InvalidConfig(format!(
                        "max-pool window {k} does not fit input {h}x{w}"
                    )));
                }
                let out_slot = self.alloc_slot();
                self.steps.push(Step::MaxPool {
                    in_slot: slot,
                    out_slot,
                    channels: c,
                    in_h: h,
                    in_w: w,
                    window: k,
                });
                Ok((out_slot, vec![c, h / k, w / k], true))
            }
            LayerSpec::GlobalAvgPool => {
                let [c, h, w] = expect_chw(&shape, "GlobalAvgPool")?;
                let out_slot = self.alloc_slot();
                self.steps.push(Step::GlobalAvgPool {
                    in_slot: slot,
                    out_slot,
                    channels: c,
                    plane: h * w,
                });
                Ok((out_slot, vec![c], true))
            }
            LayerSpec::Residual { main, shortcut } => {
                // Both branches read `slot`, so neither may mutate it.
                let (a, a_shape, _) = self.lower(main, slot, shape.clone(), false)?;
                let (b, b_shape, _) = match shortcut {
                    Some(s) => self.lower(s, slot, shape, false)?,
                    None => (slot, shape, false),
                };
                if a_shape != b_shape {
                    return Err(XbarError::InvalidConfig(format!(
                        "residual branch shapes disagree: {a_shape:?} vs {b_shape:?}"
                    )));
                }
                // The join writes into the main branch's output; if that
                // is still the protected input (degenerate identity main),
                // copy out first.
                let a = if a == slot {
                    let to = self.alloc_slot();
                    self.steps.push(Step::Copy { from: a, to });
                    to
                } else {
                    a
                };
                self.steps.push(Step::AddRelu { a, b });
                Ok((a, a_shape, true))
            }
            LayerSpec::Opaque => Err(XbarError::InvalidConfig(
                "network contains a layer the program compiler cannot lower".into(),
            )),
        }
    }
}

fn expect_chw(shape: &[usize], what: &str) -> Result<[usize; 3]> {
    match shape {
        &[c, h, w] => Ok([c, h, w]),
        _ => Err(XbarError::InvalidConfig(format!(
            "{what} expects [c, h, w] activations, got {shape:?}"
        ))),
    }
}

fn check_matrix_dims(mapped: &MappedLayer, rows: usize, cols: usize, name: &str) -> Result<()> {
    let (m_rows, m_cols) = mapped.matrix_dims();
    if m_rows != rows || m_cols != cols {
        return Err(XbarError::InvalidConfig(format!(
            "mapped matrix for '{name}' is {m_rows}x{m_cols}, datapath needs {rows}x{cols}"
        )));
    }
    Ok(())
}

fn bias_vec(bias: Option<&Param>, len: usize) -> Result<Option<Vec<f32>>> {
    match bias {
        None => Ok(None),
        Some(p) => {
            if p.value.dims() != [len] {
                return Err(XbarError::InvalidConfig(format!(
                    "bias '{}' must be [{len}], got {:?}",
                    p.name,
                    p.value.dims()
                )));
            }
            Ok(Some(p.value.as_slice().to_vec()))
        }
    }
}

/// Disjoint (source, destination) borrows of two activation slots.
fn two_slots(acts: &mut [Vec<f32>], src: usize, dst: usize) -> (&[f32], &mut Vec<f32>) {
    debug_assert_ne!(src, dst);
    if src < dst {
        let (lo, hi) = acts.split_at_mut(dst);
        (lo[src].as_slice(), &mut hi[0])
    } else {
        let (lo, hi) = acts.split_at_mut(src);
        (hi[0].as_slice(), &mut lo[dst])
    }
}

/// Stream salt splitting the negated-negative half of a differential
/// signed MVM off the positive half's noise stream (the two halves are
/// separate physical read passes, so they must not share noise).
const NEG_HALF_SALT: u64 = 0x4E4547;

/// Quantises `real` (a `rows x n_inputs` im2col-layout matrix), streams
/// it through the mapped tiles, and leaves integer outputs in `s.y`
/// (input-major); returns the total dequantisation scale. Non-negative
/// inputs take the single-pass path (bitwise identical to the per-call
/// [`crate::infer`] entry points); signed inputs run differentially.
///
/// With a noise context the tiles run the non-ideal kernel; the signed
/// path splits the context so the two differential halves draw from
/// distinct streams.
pub(crate) fn mvm_into(
    mapped: &MappedLayer,
    adc: &Adc,
    n_inputs: usize,
    real: &[f32],
    s: &mut StepScratch,
    ctx: Option<NoiseCtx>,
) -> Result<f32> {
    let quant = mapped.config().quant;
    if real.iter().all(|&x| x >= 0.0) {
        let in_scale = quantize_input_codes_into(real, &quant, &mut s.codes)?;
        match ctx {
            None => {
                mapped.matvec_codes_batch_into(&s.codes, n_inputs, adc, &mut s.batch, &mut s.y)?;
            }
            Some(c) => mapped.matvec_codes_batch_nonideal_into(
                &s.codes,
                n_inputs,
                adc,
                &c,
                &mut s.batch,
                &mut s.y,
            )?,
        }
        Ok(mapped.weight_scale() * in_scale)
    } else {
        let in_scale = quantize_input_signed_into(real, &quant, &mut s.codes, &mut s.neg_codes)?;
        match ctx {
            None => {
                mapped.matvec_codes_batch_into(&s.codes, n_inputs, adc, &mut s.batch, &mut s.y)?;
                mapped.matvec_codes_batch_into(
                    &s.neg_codes,
                    n_inputs,
                    adc,
                    &mut s.batch,
                    &mut s.y_neg,
                )?;
            }
            Some(c) => {
                mapped.matvec_codes_batch_nonideal_into(
                    &s.codes,
                    n_inputs,
                    adc,
                    &c,
                    &mut s.batch,
                    &mut s.y,
                )?;
                mapped.matvec_codes_batch_nonideal_into(
                    &s.neg_codes,
                    n_inputs,
                    adc,
                    &c.with_salt(NEG_HALF_SALT),
                    &mut s.batch,
                    &mut s.y_neg,
                )?;
            }
        }
        for (p, n) in s.y.iter_mut().zip(&s.y_neg) {
            *p -= n;
        }
        Ok(mapped.weight_scale() * in_scale)
    }
}

/// Datapath convolution into `out` (`[f, oh*ow]` channel-major), reusing
/// every buffer in `s`. Shared by [`Step::Conv`] and the thin
/// [`crate::infer::conv2d`] wrapper.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv_forward(
    mapped: &MappedLayer,
    geometry: &Conv2dGeometry,
    adc: &Adc,
    bias: Option<&[f32]>,
    input: &[f32],
    s: &mut StepScratch,
    out: &mut Vec<f32>,
    ctx: Option<NoiseCtx>,
) -> Result<()> {
    im2col_slice_into(input, geometry, &mut s.cols)?;
    let patches = geometry.patch_count();
    let scale = mvm_with_cols(mapped, adc, patches, s, ctx)?;
    let f = mapped.matrix_dims().1;
    out.clear();
    out.resize(f * patches, 0.0);
    for (p, y_row) in s.y.chunks(f).enumerate() {
        for (fi, &v) in y_row.iter().enumerate() {
            out[fi * patches + p] = v as f32 * scale;
        }
    }
    if let Some(b) = bias {
        for (fi, row) in out.chunks_mut(patches).enumerate() {
            for x in row {
                *x += b[fi];
            }
        }
    }
    Ok(())
}

/// As [`mvm_into`] but reads the real-valued matrix from `s.cols`
/// (avoiding a simultaneous borrow of two `StepScratch` fields).
fn mvm_with_cols(
    mapped: &MappedLayer,
    adc: &Adc,
    n_inputs: usize,
    s: &mut StepScratch,
    ctx: Option<NoiseCtx>,
) -> Result<f32> {
    let cols = std::mem::take(&mut s.cols);
    let result = mvm_into(mapped, adc, n_inputs, &cols, s, ctx);
    s.cols = cols;
    result
}

/// Datapath fully-connected layer into `out` (`[out_features]`), reusing
/// every buffer in `s`. Shared by [`Step::Linear`] and the thin
/// [`crate::infer::linear`] wrapper.
pub(crate) fn linear_forward(
    mapped: &MappedLayer,
    adc: &Adc,
    bias: Option<&[f32]>,
    input: &[f32],
    s: &mut StepScratch,
    out: &mut Vec<f32>,
    ctx: Option<NoiseCtx>,
) -> Result<()> {
    // A single vector is a batch of one: same memory layout either way.
    let scale = mvm_into(mapped, adc, 1, input, s, ctx)?;
    out.clear();
    out.extend(s.y.iter().map(|&v| v as f32 * scale));
    if let Some(b) = bias {
        for (x, bv) in out.iter_mut().zip(b) {
            *x += bv;
        }
    }
    Ok(())
}

impl CompiledModel {
    /// Compiles `net` (in eval mode) for the crossbar datapath under
    /// `config`: one pass of weight mapping, bit-plane packing, ADC
    /// sizing, batch-norm folding, and optional fault baking.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] when the network contains a
    /// layer the compiler cannot lower ([`LayerSpec::Opaque`]), when
    /// layer shapes are inconsistent, or for invalid `config`s;
    /// propagates mapping errors.
    pub fn compile(net: &Network, config: XbarConfig, options: &CompileOptions) -> Result<Self> {
        let _span = tinyadc_obs::span("program.compile");
        config.validate()?;
        if let Some(policy) = &options.non_ideal {
            policy.validate()?;
        }
        let input_dims = net.input_dims().to_vec();
        let mut compiler = Compiler {
            config,
            options,
            rng: options.faults.as_ref().map(|p| SeededRng::new(p.seed)),
            steps: Vec::new(),
            n_slots: 1, // slot 0 holds the sample input
            crossbar: Vec::new(),
            fault_report: FaultReport::default(),
            remapped_columns: 0,
            unrepaired_columns: 0,
        };
        let (out_slot, out_shape, _) = compiler.lower(&net.spec(), 0, input_dims.clone(), true)?;
        if out_shape.len() != 1 {
            return Err(XbarError::InvalidConfig(format!(
                "program output must be a flat logits vector, got {out_shape:?}"
            )));
        }
        if compiler.crossbar.is_empty() {
            return Err(XbarError::InvalidConfig(
                "network has no crossbar-mappable layers".into(),
            ));
        }
        crate::obs::PROGRAM_COMPILES.inc();
        let sample_cost = modeled_sample_conversions(&compiler.steps);
        let sample_sar_cycles = modeled_sample_sar_cycles(&compiler.steps);
        Ok(Self {
            name: net.name().to_owned(),
            input_vol: input_dims.iter().product(),
            input_dims,
            output_len: out_shape[0],
            steps: compiler.steps,
            n_slots: compiler.n_slots,
            out_slot,
            config,
            crossbar: compiler.crossbar,
            fault_report: compiler.fault_report,
            remapped_columns: compiler.remapped_columns,
            unrepaired_columns: compiler.unrepaired_columns,
            sample_cost,
            sample_sar_cycles,
            non_ideal: options.non_ideal,
        })
    }

    /// Compiles a single already-mapped conv layer into a one-step
    /// program (`input [c, h, w]` → flat `[f * oh * ow]` output). Used by
    /// benches to measure compiled-reuse against per-call mapping; the
    /// caller owns any fault injection on `mapped`.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] when `mapped` is not a conv
    /// weight or geometry and matrix dimensions disagree.
    pub fn from_conv(
        mapped: MappedLayer,
        input_dims: [usize; 3],
        stride: usize,
        padding: usize,
        adc_bits: Option<u32>,
    ) -> Result<Self> {
        let _span = tinyadc_obs::span("program.compile");
        let &[f, c, kh, kw] = mapped.param_dims() else {
            return Err(XbarError::InvalidConfig(format!(
                "from_conv needs a conv weight [f, c, kh, kw], got {:?}",
                mapped.param_dims()
            )));
        };
        let [ic, h, w] = input_dims;
        if mapped.kind() != ParamKind::ConvWeight || ic != c {
            return Err(XbarError::InvalidConfig(format!(
                "from_conv: mapped {:?} with {c} channels cannot consume [{ic}, {h}, {w}]",
                mapped.kind()
            )));
        }
        let geometry = Conv2dGeometry::new(c, h, w, kh, kw, stride, padding)?;
        check_matrix_dims(&mapped, geometry.patch_len(), f, "from_conv")?;
        let adc = Adc::new(adc_bits.unwrap_or_else(|| mapped.required_adc_bits()))?;
        let config = *mapped.config();
        let summary = CrossbarSummary {
            name: "from_conv".into(),
            blocks: mapped.block_count(),
            adc_bits: adc.bits(),
        };
        let output_len = f * geometry.patch_count();
        crate::obs::PROGRAM_COMPILES.inc();
        let steps = vec![Step::Conv {
            step: Box::new(CrossbarStep {
                mapped,
                adc,
                bias: None,
                in_slot: 0,
                out_slot: 1,
            }),
            geometry,
        }];
        let sample_cost = modeled_sample_conversions(&steps);
        let sample_sar_cycles = modeled_sample_sar_cycles(&steps);
        Ok(Self {
            name: "from_conv".into(),
            input_dims: input_dims.to_vec(),
            input_vol: c * h * w,
            output_len,
            steps,
            n_slots: 2,
            out_slot: 1,
            config,
            crossbar: vec![summary],
            fault_report: FaultReport::default(),
            remapped_columns: 0,
            unrepaired_columns: 0,
            sample_cost,
            sample_sar_cycles,
            non_ideal: None,
        })
    }

    /// Reassembles a model from snapshot-decoded parts. The modeled
    /// sample costs are recomputed from the steps (they are pure
    /// functions of the mapped shapes and ADC programme), so a loaded
    /// model prices batches identically to the instance that was saved.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] when the parts are internally
    /// inconsistent (a step references a slot outside `n_slots`, or the
    /// program has no crossbar steps).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: String,
        input_dims: Vec<usize>,
        output_len: usize,
        steps: Vec<Step>,
        n_slots: usize,
        out_slot: usize,
        config: XbarConfig,
        crossbar: Vec<CrossbarSummary>,
        fault_report: FaultReport,
        remapped_columns: usize,
        unrepaired_columns: usize,
        non_ideal: Option<NonIdealPolicy>,
    ) -> Result<Self> {
        config.validate()?;
        if let Some(p) = &non_ideal {
            p.validate()?;
        }
        if crossbar.is_empty() {
            return Err(XbarError::InvalidConfig(
                "snapshot program has no crossbar layers".into(),
            ));
        }
        let slot_ok = |s: usize| s < n_slots;
        for step in &steps {
            let ok = match step {
                Step::Copy { from, to } => slot_ok(*from) && slot_ok(*to),
                Step::Conv { step, .. } | Step::Linear { step } => {
                    slot_ok(step.in_slot) && slot_ok(step.out_slot)
                }
                Step::Relu { slot } | Step::BatchNorm { slot, .. } => slot_ok(*slot),
                Step::MaxPool {
                    in_slot, out_slot, ..
                }
                | Step::GlobalAvgPool {
                    in_slot, out_slot, ..
                } => slot_ok(*in_slot) && slot_ok(*out_slot),
                Step::AddRelu { a, b } => slot_ok(*a) && slot_ok(*b),
            };
            if !ok {
                return Err(XbarError::InvalidConfig(format!(
                    "snapshot step references a slot outside 0..{n_slots}"
                )));
            }
        }
        if !slot_ok(out_slot) {
            return Err(XbarError::InvalidConfig(format!(
                "snapshot output slot {out_slot} outside 0..{n_slots}"
            )));
        }
        let sample_cost = modeled_sample_conversions(&steps);
        let sample_sar_cycles = modeled_sample_sar_cycles(&steps);
        Ok(Self {
            name,
            input_vol: input_dims.iter().product(),
            input_dims,
            output_len,
            steps,
            n_slots,
            out_slot,
            config,
            crossbar,
            fault_report,
            remapped_columns,
            unrepaired_columns,
            sample_cost,
            sample_sar_cycles,
            non_ideal,
        })
    }

    /// The step program, for the snapshot codec.
    pub(crate) fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The output slot index, for the snapshot codec.
    pub(crate) fn out_slot(&self) -> usize {
        self.out_slot
    }

    /// Per-sample input shape.
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }

    /// Length of the flat output vector (the class count for networks).
    pub fn output_len(&self) -> usize {
        self.output_len
    }

    /// Source network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of program steps.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Number of activation slots a workspace holds for this program.
    pub fn slot_count(&self) -> usize {
        self.n_slots
    }

    /// The crossbar configuration the program was compiled for.
    pub fn config(&self) -> &XbarConfig {
        &self.config
    }

    /// Per-layer crossbar summaries, in execution order.
    pub fn crossbar_layers(&self) -> &[CrossbarSummary] {
        &self.crossbar
    }

    /// Total crossbar blocks across all layers.
    pub fn total_blocks(&self) -> usize {
        self.crossbar.iter().map(|l| l.blocks).sum()
    }

    /// Largest per-layer ADC resolution in the program.
    pub fn max_adc_bits(&self) -> u32 {
        self.crossbar.iter().map(|l| l.adc_bits).max().unwrap_or(0)
    }

    /// Faults baked in at compile time (all zeros without a policy).
    pub fn fault_report(&self) -> &FaultReport {
        &self.fault_report
    }

    /// Columns rerouted to spares at compile time.
    pub fn remapped_columns(&self) -> usize {
        self.remapped_columns
    }

    /// Harmful-fault columns left unrepaired at compile time.
    pub fn unrepaired_columns(&self) -> usize {
        self.unrepaired_columns
    }

    /// The device non-ideality policy this instance runs under.
    pub fn non_ideal(&self) -> Option<&NonIdealPolicy> {
        self.non_ideal.as_ref()
    }

    /// Installs (or clears, with `None`) the per-instance non-ideality
    /// policy without recompiling: the programmed tiles are untouched,
    /// only run-time reads change. The health monitor uses this to probe
    /// one instance under different stress levels.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] when the policy holds a
    /// negative or non-finite value; the previous policy stays installed.
    pub fn set_non_ideal(&mut self, policy: Option<NonIdealPolicy>) -> Result<()> {
        if let Some(p) = &policy {
            p.validate()?;
        }
        self.non_ideal = policy;
        Ok(())
    }

    /// Modeled ADC conversions one sample performs — the static cost the
    /// batch scheduler autotunes its grain from, and the value the
    /// `xbar.adc.conversions` counter grows by per sample at run time.
    pub fn sample_conversions(&self) -> u64 {
        self.sample_cost
    }

    /// Modeled SAR ADC cycles one sample performs (conversions × per-step
    /// ADC bits). This is the quantity the serving layer prices virtual
    /// service time from: CP pruning leaves the conversion count alone
    /// (the ADC still samples every column) but shrinks the resolved bits
    /// per conversion, so a CP-compiled program serves the same request in
    /// proportionally fewer cycles.
    pub fn sample_sar_cycles(&self) -> u64 {
        self.sample_sar_cycles
    }

    /// Samples per pool task for [`Self::run_batch`]: enough samples that
    /// one task carries ~2 M modeled conversions, so pool dispatch is
    /// amortised for feather-light programs, while any sample at or above
    /// the budget gets a task of its own (maximum fan-out for real CNNs).
    /// Derived from the compile-time cost and `n` only — never from the
    /// thread count — so chunk boundaries, and therefore results, are
    /// identical on every pool size.
    fn batch_grain(&self, n: usize) -> usize {
        const CONVERSIONS_PER_TASK: u64 = 1 << 21;
        let per_task =
            usize::try_from(CONVERSIONS_PER_TASK / self.sample_cost).unwrap_or(usize::MAX);
        per_task.clamp(1, n.max(1))
    }

    /// Runs one sample through the program, returning its flat output
    /// (borrowed from the workspace — no allocation in steady state).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] for wrong input shape;
    /// propagates step errors.
    pub fn run<'w>(&self, input: &Tensor, ws: &'w mut Workspace) -> Result<&'w [f32]> {
        let _span = tinyadc_obs::span("program.run");
        if input.dims() != self.input_dims {
            return Err(XbarError::InvalidConfig(format!(
                "program input must be {:?}, got {:?}",
                self.input_dims,
                input.dims()
            )));
        }
        self.exec(input.as_slice(), ws, 0)?;
        crate::obs::WORKSPACE_BYTES.set(ws.bytes() as f64);
        Ok(&ws.acts[self.out_slot])
    }

    /// Runs a batch `[n, ...input_dims]` through the program, fanning
    /// samples out across `tinyadc-par` workers (one workspace each) and
    /// gathering `[n, output_len]` outputs. Results are bitwise invariant
    /// under the worker-thread count.
    ///
    /// # Errors
    ///
    /// As [`Self::run`]; the first failing sample's error (in sample
    /// order) is returned.
    pub fn run_batch(&self, inputs: &Tensor, ws: &mut BatchWorkspace) -> Result<Tensor> {
        let mut out = Vec::new();
        self.run_batch_into(inputs, ws, &mut out)?;
        let n = out.len() / self.output_len.max(1);
        Ok(Tensor::from_vec(out, &[n, self.output_len])?)
    }

    /// As [`Self::run_batch`], writing the flat `[n * output_len]`
    /// outputs into `out` (capacity reused — the zero-allocation batch
    /// entry point).
    ///
    /// # Errors
    ///
    /// As [`Self::run_batch`].
    pub fn run_batch_into(
        &self,
        inputs: &Tensor,
        ws: &mut BatchWorkspace,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        let dims = inputs.dims();
        if dims.len() != self.input_dims.len() + 1 || dims[1..] != self.input_dims[..] {
            return Err(XbarError::InvalidConfig(format!(
                "batch input must be [n{}], got {dims:?}",
                self.input_dims
                    .iter()
                    .map(|d| format!(", {d}"))
                    .collect::<String>()
            )));
        }
        self.run_packed_into(inputs.as_slice(), ws, out)
    }

    /// As [`Self::run_batch_into`], but taking the batch as a flat shared
    /// input pack (`n × input_vol` floats, sample-major) instead of a
    /// [`Tensor`] — the serving front-end's batch-assembly entry point.
    /// A flush copies queued request payloads into one reusable pack and
    /// runs them here as a single fan-out, so steady-state serving never
    /// constructs a tensor (no allocation). `n` is inferred from the pack
    /// length; results are bitwise identical to [`Self::run_batch_into`]
    /// on the same samples.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] when the pack length is not a
    /// multiple of the per-sample input volume; otherwise as
    /// [`Self::run_batch`].
    pub fn run_packed_into(
        &self,
        pack: &[f32],
        ws: &mut BatchWorkspace,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        let _span = tinyadc_obs::span("program.run");
        let vol = self.input_vol;
        if vol == 0 || !pack.len().is_multiple_of(vol) {
            return Err(XbarError::InvalidConfig(format!(
                "input pack of {} floats is not a multiple of the sample volume {vol}",
                pack.len()
            )));
        }
        let n = pack.len() / vol;
        if ws.samples.len() < n {
            ws.samples.resize_with(n, Workspace::default);
        }
        // One workspace per sample; chunk boundaries depend only on `n`
        // and the compile-time sample cost, and per-sample execution is
        // exact integer arithmetic, so the gathered outputs are bitwise
        // thread-count-invariant. Nested parallelism inside the tiles
        // degrades to serial in workers.
        let grain = self.batch_grain(n);
        tinyadc_par::for_each_chunk_mut(&mut ws.samples[..n], grain, |chunk, block| {
            for (k, sample) in block.iter_mut().enumerate() {
                let i = chunk * grain + k;
                sample.error = self
                    .exec(&pack[i * vol..(i + 1) * vol], sample, i as u64)
                    .err();
            }
        });
        out.clear();
        for sample in &mut ws.samples[..n] {
            if let Some(e) = sample.error.take() {
                return Err(e);
            }
            out.extend_from_slice(&sample.acts[self.out_slot]);
        }
        crate::obs::WORKSPACE_BYTES.set(ws.bytes() as f64);
        Ok(())
    }

    /// As [`Self::run_batch_into`], but assembling the batch from
    /// independently-owned per-request input slices instead of one packed
    /// tensor — the serving front-end's batch-assembly entry point, which
    /// lets queued requests run as one fan-out without first copying them
    /// into a contiguous staging tensor. Outputs land in request order;
    /// results are bitwise identical to packing the same slices into a
    /// tensor and calling [`Self::run_batch_into`].
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] when any slice's length is
    /// not the per-sample input volume; otherwise as [`Self::run_batch`].
    pub fn run_gather_into(
        &self,
        inputs: &[&[f32]],
        ws: &mut BatchWorkspace,
        out: &mut Vec<f32>,
    ) -> Result<()> {
        let _span = tinyadc_obs::span("program.run");
        let vol = self.input_vol;
        for (i, x) in inputs.iter().enumerate() {
            if x.len() != vol {
                return Err(XbarError::InvalidConfig(format!(
                    "gather input {i} has {} elements, program needs {vol}",
                    x.len()
                )));
            }
        }
        let n = inputs.len();
        if ws.samples.len() < n {
            ws.samples.resize_with(n, Workspace::default);
        }
        // Same determinism argument as run_batch_into: the grain depends
        // only on `n` and compile-time cost, and each sample's noise
        // stream is keyed by its batch-global index, not its worker.
        let grain = self.batch_grain(n);
        tinyadc_par::for_each_chunk_mut(&mut ws.samples[..n], grain, |chunk, block| {
            for (k, sample) in block.iter_mut().enumerate() {
                let i = chunk * grain + k;
                sample.error = self.exec(inputs[i], sample, i as u64).err();
            }
        });
        out.clear();
        for sample in &mut ws.samples[..n] {
            if let Some(e) = sample.error.take() {
                return Err(e);
            }
            out.extend_from_slice(&sample.acts[self.out_slot]);
        }
        crate::obs::WORKSPACE_BYTES.set(ws.bytes() as f64);
        Ok(())
    }

    /// Executes the step program for one sample (no spans/gauges — safe
    /// inside parallel workers). `sample` is the batch-global sample
    /// index; together with the step index it selects the non-ideal
    /// noise stream, so results do not depend on which worker ran the
    /// sample.
    fn exec(&self, input: &[f32], ws: &mut Workspace, sample: u64) -> Result<()> {
        crate::obs::PROGRAM_RUNS.inc();
        if ws.acts.len() < self.n_slots {
            ws.acts.resize(self.n_slots, Vec::new());
        }
        let slot0 = &mut ws.acts[0];
        slot0.clear();
        slot0.extend_from_slice(input);
        for (idx, step) in self.steps.iter().enumerate() {
            let ctx = match step {
                Step::Conv { .. } | Step::Linear { .. } => self
                    .non_ideal
                    .as_ref()
                    .map(|p| NoiseCtx::from_policy(p, idx as u64, sample)),
                _ => None,
            };
            Self::exec_step(step, ws, ctx)?;
        }
        Ok(())
    }

    fn exec_step(step: &Step, ws: &mut Workspace, ctx: Option<NoiseCtx>) -> Result<()> {
        let Workspace {
            step: scratch,
            acts,
            ..
        } = ws;
        match step {
            Step::Copy { from, to } => {
                let (src, dst) = two_slots(acts, *from, *to);
                dst.clear();
                dst.extend_from_slice(src);
            }
            Step::Conv { step, geometry } => {
                let (src, dst) = two_slots(acts, step.in_slot, step.out_slot);
                conv_forward(
                    &step.mapped,
                    geometry,
                    &step.adc,
                    step.bias.as_deref(),
                    src,
                    scratch,
                    dst,
                    ctx,
                )?;
            }
            Step::Linear { step } => {
                let (src, dst) = two_slots(acts, step.in_slot, step.out_slot);
                linear_forward(
                    &step.mapped,
                    &step.adc,
                    step.bias.as_deref(),
                    src,
                    scratch,
                    dst,
                    ctx,
                )?;
            }
            Step::Relu { slot } => {
                for x in acts[*slot].iter_mut() {
                    *x = x.max(0.0);
                }
            }
            Step::BatchNorm {
                slot,
                plane,
                scale,
                shift,
            } => {
                for (ci, chunk) in acts[*slot].chunks_mut(*plane).enumerate() {
                    let (s, b) = (scale[ci], shift[ci]);
                    for x in chunk {
                        *x = *x * s + b;
                    }
                }
            }
            Step::MaxPool {
                in_slot,
                out_slot,
                channels,
                in_h,
                in_w,
                window,
            } => {
                let (src, dst) = two_slots(acts, *in_slot, *out_slot);
                let (k, h, w) = (*window, *in_h, *in_w);
                let (oh, ow) = (h / k, w / k);
                dst.clear();
                dst.resize(channels * oh * ow, 0.0);
                for ci in 0..*channels {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut m = f32::NEG_INFINITY;
                            for ky in 0..k {
                                for kx in 0..k {
                                    m = m.max(src[(ci * h + oy * k + ky) * w + ox * k + kx]);
                                }
                            }
                            dst[(ci * oh + oy) * ow + ox] = m;
                        }
                    }
                }
            }
            Step::GlobalAvgPool {
                in_slot,
                out_slot,
                channels,
                plane,
            } => {
                let (src, dst) = two_slots(acts, *in_slot, *out_slot);
                dst.clear();
                dst.extend(
                    src.chunks(*plane)
                        .take(*channels)
                        .map(|ch| ch.iter().sum::<f32>() / *plane as f32),
                );
            }
            Step::AddRelu { a, b } => {
                if a == b {
                    for x in acts[*a].iter_mut() {
                        *x = (*x + *x).max(0.0);
                    }
                } else {
                    let (src, dst) = two_slots(acts, *b, *a);
                    for (x, s) in dst.iter_mut().zip(src) {
                        *x = (*x + s).max(0.0);
                    }
                }
            }
        }
        Ok(())
    }
}
