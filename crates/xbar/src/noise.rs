//! Analog non-idealities beyond device variation: wordline/bitline IR
//! drop and additive read noise.
//!
//! IR drop is the classic crossbar accuracy killer: wire resistance
//! accumulates along rows and columns, so cells far from the drivers see
//! a reduced effective voltage and contribute less current than ideal.
//! The first-order model used here (and widely in the crossbar
//! literature) attenuates each cell's contribution by
//! `1 / (1 + n_segments(r, c) · R_wire · G_load)` where `n_segments` is
//! the wire distance from the drivers and `G_load` the average loading
//! conductance.
//!
//! Column proportional pruning helps here too: with only `l` rows active
//! per column, both the current through the shared wires and the number
//! of attenuated contributors shrink — a side benefit on top of the ADC
//! saving the paper focuses on.

use crate::adc::Adc;
use crate::tile::Tile;
use crate::{Result, XbarError};
use tinyadc_tensor::rng::SeededRng;

/// First-order IR-drop model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IrDropModel {
    /// Wire resistance per cell-to-cell segment, ohms (typical: 1–5 Ω).
    pub wire_resistance_ohm: f64,
    /// Average loading conductance per active cell, siemens (typical:
    /// on the order of the device's on-conductance).
    pub load_conductance_s: f64,
}

impl IrDropModel {
    /// A model with the given segment resistance and the VTEAM-default
    /// on-conductance (10 µS) as the load.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] for negative or non-finite
    /// resistance.
    pub fn with_wire_resistance(wire_resistance_ohm: f64) -> Result<Self> {
        if !wire_resistance_ohm.is_finite() || wire_resistance_ohm < 0.0 {
            return Err(XbarError::InvalidConfig(format!(
                "wire resistance must be finite and non-negative, got {wire_resistance_ohm}"
            )));
        }
        Ok(Self {
            wire_resistance_ohm,
            load_conductance_s: 1.0 / 100e3,
        })
    }

    /// Re-checks the model fields (both are `pub`, so a literal can hold
    /// garbage the constructor would have rejected).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] for negative or non-finite
    /// resistance or load conductance.
    pub fn validate(&self) -> Result<()> {
        if !self.wire_resistance_ohm.is_finite() || self.wire_resistance_ohm < 0.0 {
            return Err(XbarError::InvalidConfig(format!(
                "wire resistance must be finite and non-negative, got {}",
                self.wire_resistance_ohm
            )));
        }
        if !self.load_conductance_s.is_finite() || self.load_conductance_s < 0.0 {
            return Err(XbarError::InvalidConfig(format!(
                "load conductance must be finite and non-negative, got {}",
                self.load_conductance_s
            )));
        }
        Ok(())
    }

    /// Attenuation factor in `(0, 1]` for the cell at `(row, col)` of a
    /// `rows × cols` array: drivers sit at row 0 (wordlines) and the ADC
    /// at column `cols-1` (bitlines), so the wire distance is
    /// `row + (cols - 1 - col)` segments.
    pub fn attenuation(&self, row: usize, col: usize, rows: usize, cols: usize) -> f64 {
        debug_assert!(row < rows && col < cols);
        let segments = (row + (cols - 1 - col)) as f64;
        1.0 / (1.0 + segments * self.wire_resistance_ohm * self.load_conductance_s)
    }

    /// Column-mean attenuation for column `col` of a `rows × cols` array:
    /// the first-order factor at the *average* wordline distance
    /// `(rows - 1) / 2` plus the column's bitline distance. The compiled
    /// datapath's noise-aware fast path scales each packed pre-ADC column
    /// sum by this single factor instead of attenuating per cell (the
    /// row-resolved model stays in [`matvec_with_ir_drop`]). Exactly `1.0`
    /// at zero wire resistance, so the ideal policy stays bitwise clean.
    pub fn column_mean_attenuation(&self, col: usize, rows: usize, cols: usize) -> f64 {
        debug_assert!(col < cols && rows > 0);
        let segments = (rows as f64 - 1.0) / 2.0 + (cols - 1 - col) as f64;
        1.0 / (1.0 + segments * self.wire_resistance_ohm * self.load_conductance_s)
    }
}

/// Additive Gaussian read noise on each digitised column reading, in
/// level units (LSBs of the ideal integer lattice).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadNoise {
    /// Standard deviation of the additive noise, in level units.
    pub sigma_levels: f64,
}

impl ReadNoise {
    /// A validated noise model.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] for negative or non-finite
    /// sigma.
    pub fn new(sigma_levels: f64) -> Result<Self> {
        let noise = Self { sigma_levels };
        noise.validate()?;
        Ok(noise)
    }

    /// Re-checks the sigma (the field is `pub`, so a literal can hold
    /// garbage the constructor would have rejected).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] for negative or non-finite
    /// sigma.
    pub fn validate(&self) -> Result<()> {
        if !self.sigma_levels.is_finite() || self.sigma_levels < 0.0 {
            return Err(XbarError::InvalidConfig(format!(
                "read-noise sigma must be finite and non-negative, got {}",
                self.sigma_levels
            )));
        }
        Ok(())
    }
}

/// Per-instance device non-ideality policy for the compiled execution
/// engine: optional IR drop and read noise applied to the packed pre-ADC
/// column sums, plus the instance seed that roots the deterministic
/// noise stream.
///
/// Composes with the stuck-at [`crate::program::FaultPolicy`]: faults
/// change which cells are programmed at compile time, the non-ideal
/// policy perturbs every read at run time. Noise is drawn from a stream
/// seed derived per (step, sample) via [`derive_stream_seed`], then
/// split per tile and per output element inside the kernels, so results
/// are bitwise identical at any thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonIdealPolicy {
    /// Optional IR-drop model (column-mean attenuation on the fast path).
    pub ir: Option<IrDropModel>,
    /// Optional additive Gaussian read noise.
    pub noise: Option<ReadNoise>,
    /// Instance seed rooting the per-(step, sample) noise streams.
    pub seed: u64,
}

impl NonIdealPolicy {
    /// An identity policy (no IR drop, no noise) with the given seed.
    pub fn ideal(seed: u64) -> Self {
        Self {
            ir: None,
            noise: None,
            seed,
        }
    }

    /// Checks both component models.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] when either component holds a
    /// negative or non-finite value.
    pub fn validate(&self) -> Result<()> {
        if let Some(ir) = &self.ir {
            ir.validate()?;
        }
        if let Some(noise) = &self.noise {
            noise.validate()?;
        }
        Ok(())
    }
}

/// One splitmix64-style avalanche round folding `v` into hash state `h`.
/// Used to split the instance seed into per-(step, sample, tile, element)
/// noise streams without consuming RNG state in any particular order.
pub(crate) fn mix(h: u64, v: u64) -> u64 {
    let mut z = h
        .wrapping_add(v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of the noise stream for `(step, sample)` under an instance
/// seed: two chained avalanche rounds, so nearby indices land in
/// unrelated streams (no collisions across the step × sample grid — see
/// the unit tests).
pub fn derive_stream_seed(instance_seed: u64, step: u64, sample: u64) -> u64 {
    mix(mix(instance_seed, step), sample)
}

/// Resolved per-MVM noise context handed down to the packed kernels:
/// the IR model (if any), the noise sigma (0 ⇒ draw nothing), and the
/// stream seed for this (step, sample) pair.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NoiseCtx {
    pub(crate) ir: Option<IrDropModel>,
    pub(crate) sigma: f64,
    pub(crate) stream: u64,
}

impl NoiseCtx {
    /// The context for `step`/`sample` under `policy`.
    pub(crate) fn from_policy(policy: &NonIdealPolicy, step: u64, sample: u64) -> Self {
        Self {
            ir: policy.ir,
            sigma: policy.noise.map_or(0.0, |n| n.sigma_levels),
            stream: derive_stream_seed(policy.seed, step, sample),
        }
    }

    /// A sub-context whose stream is split off by `salt` (used for the
    /// negative half of differential signed inputs and per-tile splits).
    pub(crate) fn with_salt(self, salt: u64) -> Self {
        Self {
            stream: mix(self.stream, salt),
            ..self
        }
    }

    /// The fast-path attenuation for column `col` of a `rows × cols`
    /// tile (1.0 without an IR model).
    pub(crate) fn column_attenuation(&self, col: usize, rows: usize, cols: usize) -> f64 {
        self.ir
            .map_or(1.0, |m| m.column_mean_attenuation(col, rows, cols))
    }
}

/// Bit-serial MVM through `tile` including IR drop and optional read
/// noise; with zero wire resistance and no noise this equals
/// [`Tile::matvec`].
///
/// # Errors
///
/// Propagates input-length/config errors from the tile.
pub fn matvec_with_ir_drop(
    tile: &Tile,
    input: &[u64],
    adc: &Adc,
    ir: &IrDropModel,
    read_noise: Option<&ReadNoise>,
    rng: &mut SeededRng,
) -> Result<Vec<i64>> {
    // Validate via the ideal path first (cheap) so error behaviour matches.
    let _ = tile.matvec_ideal(input)?;
    let cfg = *tile.config();
    let dac = cfg.dac_bits;
    let dac_mask = (1u64 << dac) - 1;
    let cycles = cfg.cycles();
    let cell_bits = cfg.cell.bits_per_cell;
    let (rows, cols) = (tile.rows(), tile.cols());
    let codes = tile.codes();
    let n_slices = cfg.cells_per_weight();

    // Reconstruct per-slice levels from the codes (polarity-split).
    let mut pos = vec![vec![0f64; rows * cols]; n_slices];
    let mut neg = vec![vec![0f64; rows * cols]; n_slices];
    for (i, &code) in codes.iter().enumerate() {
        let slices = cfg.cell.slice(code.unsigned_abs(), n_slices);
        let target = if code >= 0 { &mut pos } else { &mut neg };
        for (s, &level) in slices.iter().enumerate() {
            target[s][i] = level as f64;
        }
    }

    let mut y = vec![0i64; cols];
    for cycle in 0..cycles {
        let shift_in = cycle * dac;
        for j in 0..cols {
            for s in 0..n_slices {
                let shift = shift_in + s as u32 * cell_bits;
                let mut pos_sum = 0.0f64;
                let mut neg_sum = 0.0f64;
                for r in 0..rows {
                    let bits = (input[r] >> shift_in) & dac_mask;
                    if bits == 0 {
                        continue;
                    }
                    let att = ir.attenuation(r, j, rows, cols);
                    pos_sum += bits as f64 * pos[s][r * cols + j] * att;
                    neg_sum += bits as f64 * neg[s][r * cols + j] * att;
                }
                if let Some(noise) = read_noise {
                    pos_sum += noise.sigma_levels * f64::from(rng.sample_standard_normal());
                    neg_sum += noise.sigma_levels * f64::from(rng.sample_standard_normal());
                }
                let p = adc.sample_analog(pos_sum) as i64;
                let n = adc.sample_analog(neg_sum) as i64;
                y[j] += (p - n) << shift;
            }
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::required_adc_bits_paper;
    use crate::quant::QuantConfig;
    use crate::tile::XbarConfig;
    use tinyadc_prune::CrossbarShape;

    fn cfg() -> XbarConfig {
        XbarConfig {
            shape: CrossbarShape::new(16, 16).unwrap(),
            quant: QuantConfig {
                weight_bits: 5,
                input_bits: 4,
            },
            ..XbarConfig::paper_default()
        }
    }

    #[test]
    fn attenuation_bounds_and_monotonicity() {
        let ir = IrDropModel::with_wire_resistance(5.0).unwrap();
        let a00 = ir.attenuation(0, 15, 16, 16); // closest to both drivers
        assert!(a00 <= 1.0 && a00 > 0.99);
        let afar = ir.attenuation(15, 0, 16, 16); // farthest corner
        assert!(afar < a00);
        // Monotone in row distance.
        for r in 0..15 {
            assert!(ir.attenuation(r, 8, 16, 16) >= ir.attenuation(r + 1, 8, 16, 16));
        }
        // Zero resistance -> no attenuation anywhere.
        let ideal = IrDropModel::with_wire_resistance(0.0).unwrap();
        assert_eq!(ideal.attenuation(15, 0, 16, 16), 1.0);
    }

    #[test]
    fn zero_resistance_means_unit_attenuation_for_every_cell() {
        let ideal = IrDropModel::with_wire_resistance(0.0).unwrap();
        for r in 0..16 {
            for c in 0..16 {
                assert_eq!(ideal.attenuation(r, c, 16, 16), 1.0, "cell ({r}, {c})");
            }
        }
    }

    #[test]
    fn attenuation_strictly_decreases_with_wire_distance() {
        let ir = IrDropModel::with_wire_resistance(5.0).unwrap();
        // Walk cells in order of wire distance: row r, column cols-1
        // (segments = r), so each step adds exactly one segment.
        let mut prev = f64::INFINITY;
        for r in 0..16 {
            let a = ir.attenuation(r, 15, 16, 16);
            assert!(a < prev, "row {r}: {a} not below {prev}");
            prev = a;
        }
        // Same strict decrease along a wordline (distance grows toward
        // column 0) and equality for equidistant cells.
        for c in (1..16).rev() {
            assert!(ir.attenuation(0, c - 1, 16, 16) < ir.attenuation(0, c, 16, 16));
        }
        assert_eq!(ir.attenuation(3, 15, 16, 16), ir.attenuation(0, 12, 16, 16));
    }

    #[test]
    fn zero_wire_resistance_matches_digital_path() {
        let mut rng = SeededRng::new(1);
        let codes: Vec<i64> = (0..16 * 4).map(|i| ((i * 7) % 31) as i64 - 15).collect();
        let tile = Tile::new(&codes, 16, 4, cfg()).unwrap();
        let adc = Adc::new(required_adc_bits_paper(1, 2, 16)).unwrap();
        let ir = IrDropModel::with_wire_resistance(0.0).unwrap();
        let input: Vec<u64> = (0..16).map(|i| (i % 16) as u64).collect();
        assert_eq!(
            matvec_with_ir_drop(&tile, &input, &adc, &ir, None, &mut rng).unwrap(),
            tile.matvec(&input, &adc).unwrap()
        );
    }

    #[test]
    fn ir_drop_error_grows_with_wire_resistance() {
        let mut rng = SeededRng::new(2);
        let codes: Vec<i64> = (0..16 * 4).map(|i| ((i * 5) % 31) as i64 - 15).collect();
        let tile = Tile::new(&codes, 16, 4, cfg()).unwrap();
        let adc = Adc::new(required_adc_bits_paper(1, 2, 16)).unwrap();
        let input: Vec<u64> = vec![15; 16];
        let ideal = tile.matvec_ideal(&input).unwrap();
        let error_at = |r_ohm: f64, rng: &mut SeededRng| -> i64 {
            let ir = IrDropModel::with_wire_resistance(r_ohm).unwrap();
            let out = matvec_with_ir_drop(&tile, &input, &adc, &ir, None, rng).unwrap();
            out.iter().zip(&ideal).map(|(a, b)| (a - b).abs()).sum()
        };
        let e1 = error_at(100.0, &mut rng);
        let e2 = error_at(2000.0, &mut rng);
        assert!(e2 > e1, "error must grow with resistance: {e1} vs {e2}");
    }

    #[test]
    fn cp_pruned_tile_suffers_less_ir_drop_error() {
        // Same weights, pruned to 2 active rows per column: fewer
        // attenuated contributors -> lower relative output error.
        let mut rng = SeededRng::new(3);
        let dense_codes: Vec<i64> = (0..16 * 4).map(|i| ((i * 11) % 29) as i64 - 14).collect();
        // Keep the 2 largest magnitudes per column, zero the rest.
        let mut pruned = dense_codes.clone();
        for j in 0..4 {
            let mut idx: Vec<usize> = (0..16).collect();
            idx.sort_by_key(|&r| std::cmp::Reverse(dense_codes[r * 4 + j].abs()));
            for &r in &idx[2..] {
                pruned[r * 4 + j] = 0;
            }
        }
        let dense = Tile::new(&dense_codes, 16, 4, cfg()).unwrap();
        let sparse = Tile::new(&pruned, 16, 4, cfg()).unwrap();
        let adc = Adc::new(required_adc_bits_paper(1, 2, 16)).unwrap();
        let ir = IrDropModel::with_wire_resistance(1000.0).unwrap();
        let input: Vec<u64> = vec![15; 16];

        // The pruned tile's cells are a subset of the dense tile's with
        // identical values, so its total absolute IR-drop deviation is a
        // subset sum of the dense one's (up to ADC rounding).
        let abs_error = |tile: &Tile, rng: &mut SeededRng| -> f64 {
            let ideal = tile.matvec_ideal(&input).unwrap();
            let out = matvec_with_ir_drop(tile, &input, &adc, &ir, None, rng).unwrap();
            out.iter()
                .zip(&ideal)
                .map(|(a, b)| ((a - b) as f64).abs())
                .sum()
        };
        let dense_err = abs_error(&dense, &mut rng);
        let sparse_err = abs_error(&sparse, &mut rng);
        let rounding_slack = 4.0 * 8.0; // 4 cols x 8 cycles x +-0.5 LSB x2
        assert!(
            sparse_err <= dense_err + rounding_slack,
            "pruned {sparse_err} vs dense {dense_err}"
        );
    }

    #[test]
    fn read_noise_perturbs_output() {
        let mut rng = SeededRng::new(4);
        let codes: Vec<i64> = vec![7; 16];
        let tile = Tile::new(&codes, 16, 1, cfg()).unwrap();
        let adc = Adc::new(required_adc_bits_paper(1, 2, 16)).unwrap();
        let ir = IrDropModel::with_wire_resistance(0.0).unwrap();
        let noise = ReadNoise { sigma_levels: 3.0 };
        let input: Vec<u64> = vec![15; 16];
        let clean = tile.matvec(&input, &adc).unwrap();
        let noisy = matvec_with_ir_drop(&tile, &input, &adc, &ir, Some(&noise), &mut rng).unwrap();
        assert_ne!(clean, noisy);
    }

    #[test]
    fn negative_resistance_rejected() {
        assert!(IrDropModel::with_wire_resistance(-1.0).is_err());
    }

    #[test]
    fn non_finite_resistance_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = IrDropModel::with_wire_resistance(bad).unwrap_err();
            assert!(matches!(err, XbarError::InvalidConfig(_)), "{bad}");
        }
        // validate() catches garbage written directly into the pub fields.
        let mut ir = IrDropModel::with_wire_resistance(1.0).unwrap();
        ir.load_conductance_s = f64::NAN;
        assert!(ir.validate().is_err());
        ir.load_conductance_s = -1e-6;
        assert!(ir.validate().is_err());
    }

    #[test]
    fn read_noise_sigma_validated() {
        assert!(ReadNoise::new(0.0).is_ok());
        assert!(ReadNoise::new(2.5).is_ok());
        for bad in [-0.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = ReadNoise::new(bad).unwrap_err();
            assert!(matches!(err, XbarError::InvalidConfig(_)), "{bad}");
        }
        let garbage = ReadNoise {
            sigma_levels: f64::NAN,
        };
        assert!(garbage.validate().is_err());
    }

    #[test]
    fn non_ideal_policy_validates_components() {
        let ok = NonIdealPolicy {
            ir: Some(IrDropModel::with_wire_resistance(5.0).unwrap()),
            noise: Some(ReadNoise::new(0.5).unwrap()),
            seed: 7,
        };
        assert!(ok.validate().is_ok());
        assert!(NonIdealPolicy::ideal(0).validate().is_ok());

        let bad_ir = NonIdealPolicy {
            ir: Some(IrDropModel {
                wire_resistance_ohm: f64::INFINITY,
                load_conductance_s: 1e-5,
            }),
            ..ok
        };
        assert!(bad_ir.validate().is_err());
        let bad_noise = NonIdealPolicy {
            noise: Some(ReadNoise { sigma_levels: -1.0 }),
            ..ok
        };
        assert!(bad_noise.validate().is_err());
    }

    #[test]
    fn column_mean_attenuation_properties() {
        let ir = IrDropModel::with_wire_resistance(1000.0).unwrap();
        // Exactly 1.0 everywhere at zero resistance (the bitwise-clean
        // guarantee of the ideal policy).
        let ideal = IrDropModel::with_wire_resistance(0.0).unwrap();
        for j in 0..16 {
            assert_eq!(ideal.column_mean_attenuation(j, 16, 16), 1.0);
        }
        // Strictly increasing toward the ADC column, bounded by the
        // nearest/farthest row-resolved factors.
        for j in 0..16 {
            let a = ir.column_mean_attenuation(j, 16, 16);
            assert!(a > 0.0 && a <= 1.0);
            if j > 0 {
                assert!(a > ir.column_mean_attenuation(j - 1, 16, 16));
            }
            assert!(a <= ir.attenuation(0, j, 16, 16));
            assert!(a >= ir.attenuation(15, j, 16, 16));
        }
    }

    #[test]
    fn stream_seeds_have_no_collisions_across_steps_and_samples() {
        // The derived per-(step, sample) streams must be pairwise distinct
        // over a serving-sized grid, and distinct across instance seeds.
        let mut seen = std::collections::HashSet::new();
        for instance in [0u64, 1, 0xDEAD_BEEF] {
            for step in 0..32u64 {
                for sample in 0..256u64 {
                    assert!(
                        seen.insert(derive_stream_seed(instance, step, sample)),
                        "collision at instance {instance}, step {step}, sample {sample}"
                    );
                }
            }
        }
        // Index roles are not interchangeable.
        assert_ne!(derive_stream_seed(7, 1, 2), derive_stream_seed(7, 2, 1));
    }
}
