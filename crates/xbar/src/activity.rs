//! Activity accounting for crossbar MVMs: how many ADC conversions, DAC
//! toggles and array accesses one inference performs.
//!
//! The paper's throughput argument (§IV-D) rests on the fact that smaller
//! ADCs are not just cheaper but *faster*, and that pruning reduces the
//! number of conversions. This module counts the events of the bit-serial
//! datapath for a mapped layer so the hardware crate can turn them into
//! dynamic energy (`tinyadc_hw::energy`).

use crate::mapping::MappedLayer;
use crate::tile::Tile;

/// Event counts for one full MVM through a mapped layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActivityReport {
    /// ADC conversions (one per polarity × slice × column × cycle).
    pub adc_conversions: u64,
    /// DAC bit-drive events (one per row × cycle, across tiles).
    pub dac_events: u64,
    /// Crossbar column read-outs (column × cycle × tile).
    pub column_reads: u64,
    /// Shift-and-add operations (one per ADC conversion).
    pub shift_adds: u64,
    /// Streaming cycles executed (cycles × tiles).
    pub tile_cycles: u64,
}

impl ActivityReport {
    /// Element-wise sum of two reports.
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            adc_conversions: self.adc_conversions + other.adc_conversions,
            dac_events: self.dac_events + other.dac_events,
            column_reads: self.column_reads + other.column_reads,
            shift_adds: self.shift_adds + other.shift_adds,
            tile_cycles: self.tile_cycles + other.tile_cycles,
        }
    }
}

/// Counts the events one MVM through `tile` performs.
pub fn tile_activity(tile: &Tile) -> ActivityReport {
    let cfg = tile.config();
    let cycles = u64::from(cfg.cycles());
    let slices = cfg.cells_per_weight() as u64;
    let cols = tile.cols() as u64;
    let rows = tile.rows() as u64;
    // Two polarities per (slice, column, cycle).
    let conversions = 2 * slices * cols * cycles;
    ActivityReport {
        adc_conversions: conversions,
        dac_events: rows * cycles,
        column_reads: 2 * slices * cols * cycles,
        shift_adds: conversions,
        tile_cycles: cycles,
    }
}

/// Counts the events one MVM through an entire mapped layer performs.
pub fn layer_activity(layer: &MappedLayer) -> ActivityReport {
    layer
        .tiles()
        .iter()
        .map(tile_activity)
        .fold(ActivityReport::default(), ActivityReport::merged)
}

/// Events for one full network inference given per-layer MVM counts
/// (a conv layer runs its MVM once per output pixel).
pub fn scaled_activity(per_mvm: ActivityReport, mvm_count: u64) -> ActivityReport {
    ActivityReport {
        adc_conversions: per_mvm.adc_conversions * mvm_count,
        dac_events: per_mvm.dac_events * mvm_count,
        column_reads: per_mvm.column_reads * mvm_count,
        shift_adds: per_mvm.shift_adds * mvm_count,
        tile_cycles: per_mvm.tile_cycles * mvm_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::XbarConfig;
    use tinyadc_nn::ParamKind;
    use tinyadc_prune::CrossbarShape;
    use tinyadc_tensor::rng::SeededRng;
    use tinyadc_tensor::Tensor;

    fn cfg() -> XbarConfig {
        XbarConfig {
            shape: CrossbarShape::new(8, 8).unwrap(),
            ..XbarConfig::paper_default()
        }
    }

    #[test]
    fn tile_counts_follow_geometry() {
        let codes = vec![1i64; 4 * 3];
        let tile = Tile::new(&codes, 4, 3, cfg()).unwrap();
        let a = tile_activity(&tile);
        // paper_default: 8 cycles, 4 slices, 2 polarities.
        assert_eq!(a.tile_cycles, 8);
        assert_eq!(a.adc_conversions, 2 * 4 * 3 * 8);
        assert_eq!(a.dac_events, 4 * 8);
        assert_eq!(a.shift_adds, a.adc_conversions);
    }

    #[test]
    fn layer_activity_sums_tiles() {
        let mut rng = SeededRng::new(1);
        let w = Tensor::randn(&[10, 18], 0.5, &mut rng); // matrix [18, 10]
        let mapped =
            crate::mapping::MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
        // 18 rows -> 3 row blocks (8+8+2); 10 cols -> 2 col blocks (8+2).
        assert_eq!(mapped.block_count(), 6);
        let a = layer_activity(&mapped);
        let per_tile: u64 = mapped
            .tiles()
            .iter()
            .map(|t| tile_activity(t).adc_conversions)
            .sum();
        assert_eq!(a.adc_conversions, per_tile);
        assert!(a.adc_conversions > 0);
    }

    #[test]
    fn scaling_multiplies_everything() {
        let codes = vec![1i64; 4];
        let tile = Tile::new(&codes, 2, 2, cfg()).unwrap();
        let a = tile_activity(&tile);
        let s = scaled_activity(a, 5);
        assert_eq!(s.adc_conversions, a.adc_conversions * 5);
        assert_eq!(s.tile_cycles, a.tile_cycles * 5);
    }

    #[test]
    fn merge_is_commutative() {
        let a = ActivityReport {
            adc_conversions: 1,
            dac_events: 2,
            column_reads: 3,
            shift_adds: 4,
            tile_cycles: 5,
        };
        let b = ActivityReport {
            adc_conversions: 10,
            dac_events: 20,
            column_reads: 30,
            shift_adds: 40,
            tile_cycles: 50,
        };
        assert_eq!(a.merged(b), b.merged(a));
    }
}
