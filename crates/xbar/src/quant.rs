//! Fixed-point quantisation of weights and activations.
//!
//! Weights are quantised to symmetric signed fixed point; the sign is
//! handled by differential column pairs in the crossbar (positive and
//! negative parts on separate columns, subtracted after digitisation), so
//! only the *magnitude* is bit-sliced across cells. Inputs are quantised
//! to unsigned fixed point (activations are post-ReLU in the mapped
//! layers), streamed one bit per cycle through the 1-bit DACs.

use crate::{Result, XbarError};
use tinyadc_tensor::Tensor;

/// Quantisation widths for mapping a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantConfig {
    /// Total weight bits, including sign (ISAAC-style default: 8).
    pub weight_bits: u32,
    /// Input (activation) bits, unsigned (default: 8).
    pub input_bits: u32,
}

impl Default for QuantConfig {
    fn default() -> Self {
        Self {
            weight_bits: 8,
            input_bits: 8,
        }
    }
}

impl QuantConfig {
    /// Validates the widths.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] for zero or > 16-bit widths
    /// (the integer simulation uses i64 accumulators sized for ≤ 16).
    pub fn validate(&self) -> Result<()> {
        if !(2..=16).contains(&self.weight_bits) || !(1..=16).contains(&self.input_bits) {
            return Err(XbarError::InvalidConfig(format!(
                "weight_bits {} must be in 2..=16 and input_bits {} in 1..=16",
                self.weight_bits, self.input_bits
            )));
        }
        Ok(())
    }

    /// Largest weight magnitude code: `2^(weight_bits-1) − 1`.
    pub fn weight_max(&self) -> i64 {
        (1i64 << (self.weight_bits - 1)) - 1
    }

    /// Largest input code: `2^input_bits − 1`.
    pub fn input_max(&self) -> u64 {
        (1u64 << self.input_bits) - 1
    }
}

/// A quantised tensor: integer codes plus the scale that dequantises them
/// (`real ≈ code * scale`).
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    /// Integer codes, same volume as the source tensor.
    pub codes: Vec<i64>,
    /// Dequantisation scale.
    pub scale: f32,
    /// Original shape.
    pub dims: Vec<usize>,
}

impl Quantized {
    /// Reconstructs the real-valued tensor from the codes.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (only possible if `dims` was tampered with).
    pub fn dequantize(&self) -> Result<Tensor> {
        let data = self.codes.iter().map(|&c| c as f32 * self.scale).collect();
        Ok(Tensor::from_vec(data, &self.dims)?)
    }
}

/// Symmetric signed quantisation of weights: codes in
/// `[-weight_max, weight_max]`, scale `absmax / weight_max`.
/// Exact zeros stay exactly zero — essential for pruning.
///
/// # Errors
///
/// Propagates invalid [`QuantConfig`]s.
pub fn quantize_weights(weights: &Tensor, config: &QuantConfig) -> Result<Quantized> {
    config.validate()?;
    let absmax = weights.abs_max();
    let qmax = config.weight_max();
    let scale = if absmax == 0.0 {
        1.0
    } else {
        absmax / qmax as f32
    };
    let codes = weights
        .as_slice()
        .iter()
        .map(|&w| ((w / scale).round() as i64).clamp(-qmax, qmax))
        .collect();
    Ok(Quantized {
        codes,
        scale,
        dims: weights.dims().to_vec(),
    })
}

/// Unsigned quantisation of a non-negative input vector: codes in
/// `[0, input_max]`, scale `max / input_max`.
///
/// # Errors
///
/// Returns [`XbarError::InvalidConfig`] if any entry is negative (mapped
/// layers consume post-ReLU activations), or for invalid configs.
pub fn quantize_input(input: &Tensor, config: &QuantConfig) -> Result<Quantized> {
    config.validate()?;
    if input.as_slice().iter().any(|&x| x < 0.0) {
        return Err(XbarError::InvalidConfig(
            "crossbar inputs must be non-negative (post-ReLU)".into(),
        ));
    }
    let max = input.max().max(0.0);
    let qmax = config.input_max();
    let scale = if max == 0.0 { 1.0 } else { max / qmax as f32 };
    let codes = input
        .as_slice()
        .iter()
        .map(|&x| ((x / scale).round() as i64).clamp(0, qmax as i64))
        .collect();
    Ok(Quantized {
        codes,
        scale,
        dims: input.dims().to_vec(),
    })
}

/// Unsigned quantisation of a non-negative slice straight into a `u64`
/// code buffer (the representation the packed crossbar kernel consumes),
/// returning the dequantisation scale. `out` is resized to `input.len()`
/// and fully overwritten; after the first call its capacity is reused, so
/// steady-state calls perform no heap allocation. The codes and scale are
/// bitwise identical to [`quantize_input`]'s.
///
/// # Errors
///
/// Returns [`XbarError::InvalidConfig`] if any entry is negative (mapped
/// layers consume post-ReLU activations), or for invalid configs.
pub fn quantize_input_codes_into(
    input: &[f32],
    config: &QuantConfig,
    out: &mut Vec<u64>,
) -> Result<f32> {
    config.validate()?;
    if input.iter().any(|&x| x < 0.0) {
        return Err(XbarError::InvalidConfig(
            "crossbar inputs must be non-negative (post-ReLU)".into(),
        ));
    }
    let max = input.iter().fold(0.0f32, |a, &b| a.max(b));
    let qmax = config.input_max();
    let scale = if max == 0.0 { 1.0 } else { max / qmax as f32 };
    out.clear();
    // Post-ReLU activation slices are dominated by exact zeros, which
    // quantise to code 0 at any scale ((0/s).round() == 0); branching
    // past the divide/round keeps the hot quantisation pass proportional
    // to the non-zero population. Bitwise identical to the unbranched map.
    out.extend(input.iter().map(|&x| {
        if x == 0.0 {
            0
        } else {
            ((x / scale).round() as i64).clamp(0, qmax as i64) as u64
        }
    }));
    Ok(scale)
}

/// Signed quantisation of a slice into *differential* unsigned code
/// buffers: `pos` holds the positive part, `neg` the negated negative
/// part, both against one shared scale (`absmax / input_max`, 1.0 when
/// all-zero) so that `x ≈ (pos − neg) * scale` elementwise. The crossbar
/// streams each half as an ordinary unsigned MVM and subtracts the
/// digitised results — the input-side analogue of the differential column
/// pairs that carry weight signs. For non-negative inputs the `pos` codes
/// and scale are bitwise identical to [`quantize_input`]'s and `neg` is
/// all-zero.
///
/// Both buffers are resized to `input.len()` reusing their capacity, so
/// steady-state calls perform no heap allocation.
///
/// # Errors
///
/// Propagates invalid [`QuantConfig`]s.
pub fn quantize_input_signed_into(
    input: &[f32],
    config: &QuantConfig,
    pos: &mut Vec<u64>,
    neg: &mut Vec<u64>,
) -> Result<f32> {
    config.validate()?;
    let absmax = input.iter().fold(0.0f32, |a, &b| a.max(b.abs()));
    let qmax = config.input_max() as i64;
    let scale = if absmax == 0.0 {
        1.0
    } else {
        absmax / qmax as f32
    };
    pos.clear();
    neg.clear();
    for &x in input {
        // Exact zeros (and -0.0) quantise to 0 in both halves at any
        // scale; skip the divide/round for them (bitwise identical).
        if x == 0.0 {
            pos.push(0);
            neg.push(0);
            continue;
        }
        let c = ((x / scale).round() as i64).clamp(-qmax, qmax);
        pos.push(c.max(0) as u64);
        neg.push((-c).max(0) as u64);
    }
    Ok(scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyadc_tensor::rng::SeededRng;

    #[test]
    fn weight_round_trip_error_is_bounded() {
        let mut rng = SeededRng::new(3);
        let w = Tensor::randn(&[8, 8], 1.0, &mut rng);
        let cfg = QuantConfig::default();
        let q = quantize_weights(&w, &cfg).unwrap();
        let back = q.dequantize().unwrap();
        let max_err = w.sub(&back).unwrap().abs_max();
        assert!(max_err <= q.scale * 0.5 + 1e-7, "err {max_err}");
    }

    #[test]
    fn zeros_stay_zero() {
        let mut w = Tensor::zeros(&[4]);
        w.as_mut_slice()[1] = 1.0;
        let q = quantize_weights(&w, &QuantConfig::default()).unwrap();
        assert_eq!(q.codes[0], 0);
        assert_eq!(q.codes[2], 0);
        assert_eq!(q.codes[1], QuantConfig::default().weight_max());
    }

    #[test]
    fn all_zero_tensor_quantizes() {
        let q = quantize_weights(&Tensor::zeros(&[4]), &QuantConfig::default()).unwrap();
        assert!(q.codes.iter().all(|&c| c == 0));
        assert_eq!(q.dequantize().unwrap().sum(), 0.0);
    }

    #[test]
    fn codes_stay_in_range() {
        let mut rng = SeededRng::new(5);
        let w = Tensor::randn(&[100], 10.0, &mut rng);
        let cfg = QuantConfig {
            weight_bits: 4,
            input_bits: 4,
        };
        let q = quantize_weights(&w, &cfg).unwrap();
        assert!(q.codes.iter().all(|&c| c.abs() <= 7));
    }

    #[test]
    fn input_quantisation_is_unsigned() {
        let x = Tensor::from_vec(vec![0.0, 0.5, 1.0], &[3]).unwrap();
        let q = quantize_input(&x, &QuantConfig::default()).unwrap();
        assert_eq!(q.codes[0], 0);
        assert_eq!(q.codes[2], 255);
        assert!(q.codes[1] >= 127 && q.codes[1] <= 128);
    }

    #[test]
    fn negative_input_rejected() {
        let x = Tensor::from_vec(vec![-0.1, 0.5], &[2]).unwrap();
        assert!(quantize_input(&x, &QuantConfig::default()).is_err());
        let mut buf = Vec::new();
        assert!(
            quantize_input_codes_into(&[-0.1, 0.5], &QuantConfig::default(), &mut buf).is_err()
        );
    }

    #[test]
    fn codes_into_matches_quantize_input_and_reuses_capacity() {
        let mut rng = SeededRng::new(12);
        let x = Tensor::uniform(&[64], 0.0, 3.0, &mut rng);
        let cfg = QuantConfig::default();
        let q = quantize_input(&x, &cfg).unwrap();
        let mut buf = Vec::new();
        let scale = quantize_input_codes_into(x.as_slice(), &cfg, &mut buf).unwrap();
        assert_eq!(scale, q.scale);
        let as_u64: Vec<u64> = q.codes.iter().map(|&c| c as u64).collect();
        assert_eq!(buf, as_u64);
        let ptr = buf.as_ptr();
        quantize_input_codes_into(x.as_slice(), &cfg, &mut buf).unwrap();
        assert_eq!(ptr, buf.as_ptr(), "repeat call must not reallocate");
    }

    #[test]
    fn signed_differential_reconstructs_and_matches_unsigned() {
        let cfg = QuantConfig::default();
        let x = [-1.5f32, -0.25, 0.0, 0.75, 1.5];
        let (mut pos, mut neg) = (Vec::new(), Vec::new());
        let scale = quantize_input_signed_into(&x, &cfg, &mut pos, &mut neg).unwrap();
        for (i, &v) in x.iter().enumerate() {
            let back = (pos[i] as f32 - neg[i] as f32) * scale;
            assert!((back - v).abs() <= scale * 0.5 + 1e-6, "{back} vs {v}");
            assert!(pos[i] == 0 || neg[i] == 0, "differential halves overlap");
        }
        // Non-negative input: pos half bitwise matches quantize_input.
        let y = Tensor::from_vec(vec![0.0, 0.5, 2.0], &[3]).unwrap();
        let q = quantize_input(&y, &cfg).unwrap();
        let s2 = quantize_input_signed_into(y.as_slice(), &cfg, &mut pos, &mut neg).unwrap();
        assert_eq!(s2, q.scale);
        let as_u64: Vec<u64> = q.codes.iter().map(|&c| c as u64).collect();
        assert_eq!(pos, as_u64);
        assert!(neg.iter().all(|&n| n == 0));
    }

    #[test]
    fn config_validation() {
        assert!(QuantConfig {
            weight_bits: 1,
            input_bits: 8
        }
        .validate()
        .is_err());
        assert!(QuantConfig {
            weight_bits: 8,
            input_bits: 0
        }
        .validate()
        .is_err());
        assert!(QuantConfig::default().validate().is_ok());
        assert_eq!(QuantConfig::default().weight_max(), 127);
        assert_eq!(QuantConfig::default().input_max(), 255);
    }
}
