use std::fmt;
use tinyadc_prune::PruneError;
use tinyadc_tensor::TensorError;

/// Error type for crossbar mapping and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum XbarError {
    /// Underlying tensor failure.
    Tensor(TensorError),
    /// Underlying layout/pruning failure.
    Prune(PruneError),
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// An input vector did not match the mapped layer's row count.
    InputLengthMismatch {
        /// Rows the mapping expects.
        expected: usize,
        /// Length supplied.
        actual: usize,
    },
}

impl fmt::Display for XbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Tensor(e) => write!(f, "tensor error: {e}"),
            Self::Prune(e) => write!(f, "layout error: {e}"),
            Self::InvalidConfig(msg) => write!(f, "invalid crossbar configuration: {msg}"),
            Self::InputLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "input length {actual} does not match mapped rows {expected}"
                )
            }
        }
    }
}

impl std::error::Error for XbarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Tensor(e) => Some(e),
            Self::Prune(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for XbarError {
    fn from(e: TensorError) -> Self {
        Self::Tensor(e)
    }
}

impl From<PruneError> for XbarError {
    fn from(e: PruneError) -> Self {
        Self::Prune(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = XbarError::InputLengthMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(e.to_string().contains('4'));
        let t: XbarError = TensorError::InvalidArgument("x".into()).into();
        assert!(std::error::Error::source(&t).is_some());
    }
}
