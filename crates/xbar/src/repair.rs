//! Fault repair: working around stuck cells before they corrupt results.
//!
//! A March test reports *where* cells are stuck ([`crate::fault`]); this
//! module decides *what to do about it*, in a ladder of increasing cost:
//!
//! 1. **Triage** ([`Tile::scan_faults`]) — classify each fault against the
//!    weights actually programmed: a fault whose stuck level equals the
//!    stored level is harmless and needs no repair at all.
//! 2. **Spare-column remapping** ([`apply_with_spares`]) — crossbar macros
//!    reserve `k` spare columns per tile; a column with harmful faults is
//!    rerouted to pristine spare hardware, recovering bitwise-exact
//!    outputs while spares last.
//! 3. **CP-slack redistribution** ([`redistribution_mask`]) — when spares
//!    run out, re-project the damaged columns' weights onto their healthy
//!    cells with the pruning constraint's own Euclidean projection
//!    ([`CpConstraint::project`]), producing a retraining mask that keeps
//!    every healthy weight and re-opens slack positions near the drivers.
//! 4. **Fault-masked retraining** ([`harmful_weight_mask`]) — the fallback
//!    mask that simply freezes damaged weights at zero so fine-tuning
//!    recovers accuracy around them.
//!
//! Every repair that touches cells goes through `Tile::mutate_cells`, so
//! the packed popcount planes rebuild and stay the single source of truth.

use crate::fault::{CellFault, FaultReport, LayerFaultMap, StuckAt, TileFaultMap};
use crate::mapping::MappedLayer;
use crate::tile::Tile;
use crate::Result;
use std::collections::HashSet;
use tinyadc_prune::{layout, CpConstraint};
use tinyadc_tensor::Tensor;

/// Fault triage for one tile column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnScan {
    /// Tile-local column index.
    pub col: usize,
    /// Faulty cells in the column.
    pub faults: usize,
    /// Faults whose stuck level differs from the stored level — the ones
    /// that would corrupt MVM results.
    pub harmful: usize,
}

/// Per-column fault triage of one tile (only columns with faults appear).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TileScan {
    columns: Vec<ColumnScan>,
}

impl TileScan {
    /// Per-column triage results, ascending by column.
    pub fn columns(&self) -> &[ColumnScan] {
        &self.columns
    }

    /// Columns containing at least one harmful fault, ascending — the
    /// candidates for spare remapping.
    pub fn harmful_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .filter(|c| c.harmful > 0)
            .map(|c| c.col)
            .collect()
    }

    /// Total harmful faults across the tile.
    pub fn total_harmful(&self) -> usize {
        self.columns.iter().map(|c| c.harmful).sum()
    }
}

/// The level a fault freezes its cell at.
fn stuck_level(stuck: StuckAt, level_max: u64) -> u64 {
    match stuck {
        StuckAt::Zero => 0,
        StuckAt::Max => level_max,
    }
}

/// Whether a fault would change the cell's stored level.
fn is_harmful(tile: &Tile, fault: &CellFault) -> bool {
    let target = stuck_level(fault.stuck, tile.config().cell.level_max());
    tile.cell_level(fault.polarity, fault.slice, fault.index) != target
}

impl Tile {
    /// Triages a fault map against the weights programmed into this tile:
    /// per column, how many cells are stuck and how many of those are
    /// *harmful* (stuck at a level different from the stored one). An SA0
    /// fault on an intentional zero — the common case after CP pruning —
    /// is harmless and claims no repair resources.
    pub fn scan_faults(&self, map: &TileFaultMap) -> TileScan {
        debug_assert_eq!((self.rows(), self.cols()), (map.rows(), map.cols()));
        let mut counts = vec![(0usize, 0usize); self.cols()];
        for fault in map.faults() {
            let entry = &mut counts[fault.column(self.cols())];
            entry.0 += 1;
            if is_harmful(self, fault) {
                entry.1 += 1;
            }
        }
        TileScan {
            columns: counts
                .iter()
                .enumerate()
                .filter(|(_, &(faults, _))| faults > 0)
                .map(|(col, &(faults, harmful))| ColumnScan {
                    col,
                    faults,
                    harmful,
                })
                .collect(),
        }
    }
}

/// Outcome of a spare-column repair pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairOutcome {
    /// Faults actually forced into cells (remapped columns excluded).
    pub faults: FaultReport,
    /// Columns rerouted to spare hardware, across all tiles.
    pub remapped_columns: usize,
    /// Columns with harmful faults left unrepaired (spares exhausted).
    pub unrepaired_columns: usize,
}

/// Applies a fault map to a layer with `spares_per_tile` spare columns
/// available per tile: each tile's harmful columns claim spares in
/// ascending column order, and a remapped column's faults are skipped
/// entirely — the spare hardware is pristine, so the column's output is
/// bitwise-exact. Remaining faults (harmless ones, and harmful columns
/// beyond the spare budget) are forced into the cells, rebuilding the
/// packed planes.
///
/// # Panics
///
/// Panics when the map was sampled from a layer with a different tile
/// grid.
pub fn apply_with_spares(
    layer: &mut MappedLayer,
    map: &LayerFaultMap,
    spares_per_tile: usize,
) -> RepairOutcome {
    assert_eq!(
        map.tiles().len(),
        layer.tiles().len(),
        "fault map / layer tile count mismatch"
    );
    let mut outcome = RepairOutcome::default();
    for (tile_map, tile) in map.tiles().iter().zip(layer.tiles_mut()) {
        let harmful = tile.scan_faults(tile_map).harmful_columns();
        let remapped: HashSet<usize> = harmful.iter().copied().take(spares_per_tile).collect();
        outcome.remapped_columns += remapped.len();
        outcome.unrepaired_columns += harmful.len() - remapped.len();
        let cols = tile.cols();
        let report = tile_map.apply_filtered(tile, &|f| !remapped.contains(&f.column(cols)));
        outcome.faults.merge(&report);
    }
    // This path bypasses `LayerFaultMap::apply`, so it records the faults
    // that actually landed (remapped columns excluded) itself.
    crate::obs::FAULTS_INJECTED.add(outcome.faults.total_faults() as u64);
    crate::obs::FAULTS_SA0_HARMLESS.add(outcome.faults.sa0_harmless as u64);
    crate::obs::REPAIR_REMAPPED.add(outcome.remapped_columns as u64);
    crate::obs::REPAIR_UNREPAIRED.add(outcome.unrepaired_columns as u64);
    outcome
}

/// Builds a retraining mask (parameter layout, `1.0` = trainable) that
/// zeroes every weight with a harmful fault on any of its cells. Applying
/// it through `MaskSet`/`MaskHook` freezes the damaged weights at zero so
/// fine-tuning recovers accuracy around them — the last rung of the
/// repair ladder.
///
/// Compute the mask on the *clean* layer (before the map is applied):
/// harm is judged against the weights the cells were meant to store.
///
/// # Errors
///
/// Propagates layout errors.
pub fn harmful_weight_mask(layer: &MappedLayer, map: &LayerFaultMap) -> Result<Tensor> {
    let (rows, cols) = layer.matrix_dims();
    let (_, col_blocks) = layer.block_grid();
    let m = layer.config().shape.rows();
    let n = layer.config().shape.cols();
    let mut mask = vec![1.0f32; rows * cols];
    for (t, (tile_map, tile)) in map.tiles().iter().zip(layer.tiles()).enumerate() {
        let r0 = (t / col_blocks) * m;
        let c0 = (t % col_blocks) * n;
        for fault in tile_map.faults() {
            if is_harmful(tile, fault) {
                let r = r0 + fault.row(tile.cols());
                let c = c0 + fault.column(tile.cols());
                mask[r * cols + c] = 0.0;
            }
        }
    }
    let matrix = Tensor::from_vec(mask, &[rows, cols])?;
    Ok(layout::from_matrix(
        &matrix,
        layer.kind(),
        layer.param_dims(),
    )?)
}

/// Builds a redistribution mask (parameter layout, `1.0` = trainable) by
/// re-projecting each damaged block column onto its healthy cells with the
/// CP constraint's Euclidean projection: healthy stored weights score by
/// magnitude (all ≥ 1 in code units), zero positions in columns that lost
/// a nonzero weight re-open as candidates scored `1/(2 + row)` (< 1, so
/// they never displace a surviving weight; lower rows — nearer the
/// drivers — rank first), and damaged or faulted positions score 0. The
/// projection then keeps at most `max_nonzeros` positions per block
/// column, so retraining under the mask stays within the layer's
/// activated-row budget and its reduced ADC resolution.
///
/// Compute the mask on the *clean* layer (before the map is applied).
///
/// # Errors
///
/// Propagates projection and layout errors.
pub fn redistribution_mask(
    layer: &MappedLayer,
    map: &LayerFaultMap,
    max_nonzeros: usize,
) -> Result<Tensor> {
    let (rows, cols) = layer.matrix_dims();
    let (_, col_blocks) = layer.block_grid();
    let m = layer.config().shape.rows();
    let n = layer.config().shape.cols();
    let q = layer.quantized();
    let mut score: Vec<f32> = q.codes.iter().map(|&c| c.unsigned_abs() as f32).collect();
    // Triage pass: zero the scores of damaged weights, remember every
    // faulted position (a stuck cell cannot store a retrained weight, even
    // when its current fault is harmless), and record which block columns
    // lost a nonzero weight.
    let mut faulted: HashSet<usize> = HashSet::new();
    let mut lossy: HashSet<(usize, usize)> = HashSet::new(); // (tile, local col)
    for (t, (tile_map, tile)) in map.tiles().iter().zip(layer.tiles()).enumerate() {
        let r0 = (t / col_blocks) * m;
        let c0 = (t % col_blocks) * n;
        for fault in tile_map.faults() {
            let local_col = fault.column(tile.cols());
            let idx = (r0 + fault.row(tile.cols())) * cols + c0 + local_col;
            faulted.insert(idx);
            if is_harmful(tile, fault) {
                if q.codes[idx] != 0 {
                    lossy.insert((t, local_col));
                }
                score[idx] = 0.0;
            }
        }
    }
    // Slack pass: in each lossy block column, fault-free zero positions
    // become candidates, ranked by driver proximity.
    for &(t, local_col) in &lossy {
        let tile = &layer.tiles()[t];
        let r0 = (t / col_blocks) * m;
        let c0 = (t % col_blocks) * n;
        for r in 0..tile.rows() {
            let idx = (r0 + r) * cols + c0 + local_col;
            if q.codes[idx] == 0 && !faulted.contains(&idx) {
                score[idx] = 1.0 / (2.0 + r as f32);
            }
        }
    }
    let cp = CpConstraint::new(layer.config().shape, max_nonzeros.clamp(1, m))?;
    let projected = cp.project(&Tensor::from_vec(score, &[rows, cols])?)?;
    let mask = projected.map(|x| if x == 0.0 { 0.0 } else { 1.0 });
    Ok(layout::from_matrix(
        &mask,
        layer.kind(),
        layer.param_dims(),
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::Adc;
    use crate::fault::{FaultModel, LayerFaultMap};
    use crate::tile::XbarConfig;
    use tinyadc_nn::ParamKind;
    use tinyadc_prune::CrossbarShape;
    use tinyadc_tensor::rng::SeededRng;

    fn cfg() -> XbarConfig {
        XbarConfig {
            shape: CrossbarShape::new(8, 8).unwrap(),
            ..XbarConfig::paper_default()
        }
    }

    fn fault(polarity: usize, slice: usize, index: usize, stuck: StuckAt) -> CellFault {
        CellFault {
            polarity,
            slice,
            index,
            stuck,
        }
    }

    #[test]
    fn scan_separates_harmless_from_harmful() {
        // 2x2 tile: w[0,0] = 3 (pos slice 0 level 3), the rest zero.
        let tile = Tile::new(&[3, 0, 0, 0], 2, 2, cfg()).unwrap();
        let map = TileFaultMap::from_faults(
            2,
            2,
            vec![
                fault(0, 0, 0, StuckAt::Zero), // kills the stored 3: harmful
                fault(0, 0, 1, StuckAt::Zero), // zero cell stuck at 0: harmless
                fault(0, 0, 3, StuckAt::Max),  // zero cell stuck at max: harmful
            ],
        );
        let scan = tile.scan_faults(&map);
        assert_eq!(
            scan.columns(),
            &[
                ColumnScan {
                    col: 0,
                    faults: 1,
                    harmful: 1
                },
                ColumnScan {
                    col: 1,
                    faults: 2,
                    harmful: 1
                },
            ]
        );
        assert_eq!(scan.harmful_columns(), vec![0, 1]);
        assert_eq!(scan.total_harmful(), 2);
    }

    #[test]
    fn spares_recover_bitwise_exact_outputs() {
        let mut rng = SeededRng::new(31);
        let w = Tensor::randn(&[16, 16], 0.5, &mut rng);
        let clean = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
        let model = FaultModel::from_overall_rate(0.05).unwrap();
        let map = LayerFaultMap::sample(&clean, &model, &mut rng);
        let adc = Adc::new(clean.required_adc_bits()).unwrap();
        let input: Vec<u64> = (0..16).map(|i| (i % 16) as u64).collect();
        let reference = clean.matvec_codes(&input, &adc).unwrap();

        // Enough spares for every column: all harmful columns remap, only
        // harmless faults land, and the output is bitwise identical.
        let mut repaired = clean.clone();
        let outcome = apply_with_spares(&mut repaired, &map, 8);
        assert_eq!(outcome.unrepaired_columns, 0);
        assert!(outcome.remapped_columns > 0);
        assert_eq!(repaired.matvec_codes(&input, &adc).unwrap(), reference);
        assert_eq!(repaired.unmap().unwrap(), clean.unmap().unwrap());

        // No spares: same map corrupts the output.
        let mut unrepaired = clean.clone();
        let outcome = apply_with_spares(&mut unrepaired, &map, 0);
        assert_eq!(outcome.remapped_columns, 0);
        assert!(outcome.unrepaired_columns > 0);
        assert_ne!(unrepaired.matvec_codes(&input, &adc).unwrap(), reference);
    }

    #[test]
    fn spare_budget_caps_remapping_per_tile() {
        let mut rng = SeededRng::new(32);
        let w = Tensor::randn(&[8, 8], 0.5, &mut rng);
        let clean = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
        let model = FaultModel::from_overall_rate(0.2).unwrap();
        let map = LayerFaultMap::sample(&clean, &model, &mut rng);
        let harmful = clean.tiles()[0]
            .scan_faults(&map.tiles()[0])
            .harmful_columns()
            .len();
        assert!(harmful > 1, "need a multi-column fault pattern");
        let mut layer = clean.clone();
        let outcome = apply_with_spares(&mut layer, &map, 1);
        assert_eq!(outcome.remapped_columns, 1);
        assert_eq!(outcome.unrepaired_columns, harmful - 1);
    }

    #[test]
    fn harmful_mask_zeroes_exactly_damaged_weights() {
        // Linear [out=2, in=2] -> matrix [2, 2]; matrix (r, c) maps to
        // weight (c, r).
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.5, -0.5], &[2, 2]).unwrap();
        let layer = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
        // Matrix layout (in x out): [[1.0, 0.5], [0.0, -0.5]].
        let map = LayerFaultMap::from_tiles(vec![TileFaultMap::from_faults(
            2,
            2,
            vec![
                fault(0, 0, 0, StuckAt::Zero), // matrix (0,0)=1.0: harmful
                fault(0, 0, 2, StuckAt::Zero), // matrix (1,0)=0.0: harmless
            ],
        )]);
        let mask = harmful_weight_mask(&layer, &map).unwrap();
        assert_eq!(mask.dims(), w.dims());
        // Only weight (0, 0) — matrix (0, 0) — is damaged.
        assert_eq!(mask.as_slice(), &[0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn redistribution_mask_reopens_slack_and_respects_cap() {
        // CP-pruned layer (l = 2) on an 8x8 crossbar.
        let mut rng = SeededRng::new(33);
        let shape = CrossbarShape::new(8, 8).unwrap();
        let cp = CpConstraint::new(shape, 2).unwrap();
        let w = Tensor::randn(&[8, 8], 0.5, &mut rng);
        let pruned = cp.project_param(&w, ParamKind::LinearWeight).unwrap();
        let layer = MappedLayer::from_param(&pruned, ParamKind::LinearWeight, cfg()).unwrap();
        // Find a stored positive weight with a nonzero low slice (so an
        // SA0 on its slice-0 cell is actually harmful) and kill it.
        let q = layer.quantized();
        let idx = q
            .codes
            .iter()
            .position(|&c| c > 0 && c & 3 != 0)
            .expect("pruned layer still has nonzeros with low bits");
        let map = LayerFaultMap::from_tiles(vec![TileFaultMap::from_faults(
            8,
            8,
            vec![fault(0, 0, idx, StuckAt::Zero)],
        )]);
        let mask = redistribution_mask(&layer, &map, 2).unwrap();
        // The damaged weight is frozen out...
        let matrix = layout::to_matrix(&mask, ParamKind::LinearWeight).unwrap();
        assert_eq!(matrix.as_slice()[idx], 0.0);
        // ...a healthy zero in the same column re-opened in its place...
        let col = idx % 8;
        let reopened = (0..8)
            .filter(|&r| q.codes[r * 8 + col] == 0 && matrix.as_slice()[r * 8 + col] != 0.0)
            .count();
        assert_eq!(reopened, 1);
        // ...every healthy stored nonzero survives, and the cap holds.
        for (i, &code) in q.codes.iter().enumerate() {
            if code != 0 && i != idx {
                assert_eq!(matrix.as_slice()[i], 1.0, "healthy weight {i} dropped");
            }
        }
        assert!(cp.is_satisfied(&matrix).unwrap());
    }

    #[test]
    fn redistribution_mask_skips_faulted_candidates() {
        // Column 0 holds one nonzero at row 0; rows 1 and 2 are zero. A
        // harmful SA0 kills row 0 and a harmless SA0 sits on row 1 — the
        // candidate must be row 2 (row 1's cell is stuck and unusable).
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, 3]).unwrap(); // linear [out=1, in=3]
        let layer = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
        let map = LayerFaultMap::from_tiles(vec![TileFaultMap::from_faults(
            3,
            1,
            vec![
                fault(0, 0, 0, StuckAt::Zero), // harmful: kills the 1.0
                fault(0, 0, 1, StuckAt::Zero), // harmless, but marks the cell stuck
            ],
        )]);
        let mask = redistribution_mask(&layer, &map, 1).unwrap();
        let matrix = layout::to_matrix(&mask, ParamKind::LinearWeight).unwrap();
        assert_eq!(matrix.as_slice(), &[0.0, 0.0, 1.0]);
    }
}
