//! Bit-plane-packed popcount kernels for the bit-serial crossbar datapath.
//!
//! The reference MVM in [`crate::tile`] walks a column × cycle × slice ×
//! row quadruple loop with stride-`cols` cell accesses. This module packs
//! the same data into machine words so the inner row loop collapses to a
//! handful of `AND` + `popcount` operations:
//!
//! * **Level planes.** Each polarity/slice of the tile is decomposed into
//!   per-bit planes: plane `b` of a slice is the set of cells whose level
//!   has bit `b` set, stored as **column-major row bitmasks** — column `j`
//!   owns `words_per_col = ⌈rows/64⌉` consecutive `u64` words, bit `r` of
//!   the mask marking row `r`. A plane that is zero everywhere (common
//!   after column-proportional pruning, which zeroes whole weights and
//!   thus every bit of every slice they occupy) is dropped at pack time
//!   and costs nothing per MVM.
//! * **Input planes.** An input vector is packed once into per-bit row
//!   bitmasks the same way; the bits a DAC streams in cycle `c` are
//!   exactly input planes `c·dac_bits .. (c+1)·dac_bits`.
//!
//! The per-column pre-ADC sum of cycle `c` and slice `s` then becomes
//!
//! ```text
//! Σ_r bits_r · level_{r,j}
//!   = Σ_d Σ_b 2^(d+b) · popcount(input_plane_{c·dac+d} & level_plane_b[j])
//! ```
//!
//! which is an identity over the integers — every cross term of the two
//! binary expansions is counted exactly once — so the packed kernel feeds
//! the ADC the *same* integer column sums as the reference loop and its
//! output is bitwise identical, saturation included. All accumulation is
//! integer, so results are also invariant to any chunking or thread count.
//!
//! The hot kernels are additionally **widened**: instead of one popcount
//! chain per (cycle, slice), a single pass per stored plane walks four
//! input planes at a time through a portable [`U64x4`] accumulator,
//! loading each weight-plane word once per four DAC bits and keeping four
//! independent `count_ones` dependency chains in flight. Commutativity of
//! the integer cross-term sum makes the reordering exact (see
//! [`PackedTile::column_bit_serial`]).
//!
//! # Occupancy index
//!
//! Post-ReLU activations are dominated by zeros, and CP pruning zeroes
//! whole column spans of the level planes, so most `AND` + `popcount`
//! operands are zero. Both sides of the kernel therefore carry a
//! word-granular **occupancy index** built at pack time:
//!
//! * every stored level plane records, per column, a `u64` bitmap of its
//!   non-zero words ([`BitPlane::occ`]);
//! * every packed batch input records, per DAC plane, the same bitmap
//!   plus per-input summary counts ([`PackedInputs`]).
//!
//! A zero word contributes zero popcount, so the occupancy-indexed kernel
//! ([`PackedTile::column_bit_serial_indexed`]) may iterate only the words
//! in the *intersection* of the two bitmaps — skipping all-zero input
//! planes, all-zero level-plane columns, and every word missing from the
//! intersection — and still feed the ADC the identical per-(cycle, slice)
//! sums. The decision which kernel to run is made per input at pack time
//! from data alone ([`PackedKernel::Auto`]), so outputs and every metric
//! stay bitwise thread-count-invariant.

use crate::adc::Adc;
use std::sync::atomic::{AtomicU8, Ordering};
use tinyadc_tensor::rng::SeededRng;

/// Which packed MVM kernel the batched entry points run. The choice never
/// affects results — every kernel feeds the ADC identical integer sums —
/// only how much work is skipped (and thus the `xbar.packed.*_skipped`
/// software counters and wall-clock time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackedKernel {
    /// Per-input dispatch decided at pack time from the input's word
    /// occupancy: all-zero inputs short-circuit, sparse inputs run the
    /// occupancy-indexed kernel, dense inputs the widened dense kernel.
    /// The default.
    #[default]
    Auto,
    /// Force the widened dense kernel for every input (the pre-occupancy
    /// behaviour; benchmarking baseline).
    Dense,
    /// Force the occupancy-indexed kernel for every non-empty input.
    Occupancy,
}

/// Process-global kernel selection (`0 = Auto, 1 = Dense, 2 = Occupancy`).
static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);

/// Selects the packed kernel for all subsequent batched MVMs. Intended
/// for benchmarks and equivalence tests; production code leaves the
/// default [`PackedKernel::Auto`] in place. Never changes results.
pub fn set_packed_kernel(mode: PackedKernel) {
    let v = match mode {
        PackedKernel::Auto => 0,
        PackedKernel::Dense => 1,
        PackedKernel::Occupancy => 2,
    };
    KERNEL_MODE.store(v, Ordering::Relaxed);
}

/// The packed kernel batched MVMs currently run.
pub fn packed_kernel() -> PackedKernel {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        1 => PackedKernel::Dense,
        2 => PackedKernel::Occupancy,
        _ => PackedKernel::Auto,
    }
}

/// Work the sparsity-aware kernels skipped, accumulated per chunk and
/// merged by commutative addition — thread-count-invariant because every
/// skip decision derives from packed data, never from scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SkipStats {
    /// All-zero input DAC planes skipped (counted once per column task).
    pub(crate) input_planes: u64,
    /// `u64` plane words skipped by occupancy intersection.
    pub(crate) words: u64,
}

/// One non-zero bit plane of a polarity/slice: the set of cells whose
/// level has bit [`BitPlane::bit`] set, as column-major row bitmasks.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BitPlane {
    /// Bit position within the cell level (weight `2^bit`).
    bit: u32,
    /// `cols × words_per_col` words; column `j` owns
    /// `words[j*words_per_col .. (j+1)*words_per_col]`.
    words: Vec<u64>,
    /// Per-column occupancy bitmap: bit `k` of `occ[j]` is set iff word
    /// `k` of column `j` is non-zero (words past 63 saturate into bit 63,
    /// so `occ[j] == 0` ⇔ the column is all-zero at any `words_per_col`,
    /// and the bitmap is word-exact whenever `words_per_col ≤ 64`).
    occ: Vec<u64>,
}

/// The bit planes of one slice, split by differential polarity. Planes
/// that are zero over the whole tile are omitted.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct SlicePlanes {
    pos: Vec<BitPlane>,
    neg: Vec<BitPlane>,
}

/// Bit-plane-packed view of a tile's cell levels, built once at
/// [`crate::tile::Tile::new`] time and read-only afterwards.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PackedTile {
    rows: usize,
    cols: usize,
    words_per_col: usize,
    /// One entry per weight slice, least-significant first.
    slices: Vec<SlicePlanes>,
}

/// Per-column occupancy bitmap of a freshly packed plane (bit `k` ⇔ word
/// `k` non-zero, saturating at bit 63).
fn column_occupancy(words: &[u64], cols: usize, wpc: usize) -> Vec<u64> {
    (0..cols)
        .map(|c| {
            let mut o = 0u64;
            for (k, &w) in words[c * wpc..(c + 1) * wpc].iter().enumerate() {
                if w != 0 {
                    o |= 1u64 << k.min(63);
                }
            }
            o
        })
        .collect()
}

impl PackedTile {
    /// Packs the tile's cell levels (`[slice][row * cols + col]`, one
    /// `Vec` per polarity) into per-bit column-major planes, each with its
    /// per-column occupancy bitmap.
    pub(crate) fn pack(
        pos: &[Vec<u64>],
        neg: &[Vec<u64>],
        rows: usize,
        cols: usize,
        cell_bits: u32,
    ) -> Self {
        let words_per_col = rows.div_ceil(64);
        let pack_polarity = |levels: &[u64]| -> Vec<BitPlane> {
            (0..cell_bits)
                .filter_map(|bit| {
                    let mut words = vec![0u64; cols * words_per_col];
                    let mut any = false;
                    for r in 0..rows {
                        let (w, mask) = (r / 64, 1u64 << (r % 64));
                        for c in 0..cols {
                            if (levels[r * cols + c] >> bit) & 1 == 1 {
                                words[c * words_per_col + w] |= mask;
                                any = true;
                            }
                        }
                    }
                    any.then(|| {
                        let occ = column_occupancy(&words, cols, words_per_col);
                        BitPlane { bit, words, occ }
                    })
                })
                .collect()
        };
        let slices = pos
            .iter()
            .zip(neg)
            .map(|(p, n)| SlicePlanes {
                pos: pack_polarity(p),
                neg: pack_polarity(n),
            })
            .collect();
        Self {
            rows,
            cols,
            words_per_col,
            slices,
        }
    }

    /// Words per column bitmask (`⌈rows/64⌉`).
    pub(crate) fn words_per_col(&self) -> usize {
        self.words_per_col
    }

    /// Bit planes stored across all slices/polarities (zero planes have
    /// already been dropped).
    pub(crate) fn stored_planes(&self) -> usize {
        self.slices.iter().map(|s| s.pos.len() + s.neg.len()).sum()
    }

    /// Bit-serial MVM of one column through the ADC: per (cycle, slice)
    /// the positive and negative pre-ADC sums are formed by popcount
    /// accumulation, digitised, and shift-added — the same integer sums
    /// as the reference loop.
    ///
    /// The hot path runs slice-outer: one pass over each polarity's
    /// stored planes fills *all* per-cycle sums at once, processing four
    /// input planes per iteration through a [`U64x4`] accumulator so each
    /// weight-plane word is loaded once per four DAC bits instead of once
    /// per bit. Level planes whose column-`j` occupancy is empty are
    /// skipped wholesale (their popcounts are all zero; `skipped_words`
    /// counts the loads avoided). Reordering is exact — every
    /// `(input bit × level bit)` cross term is an integer added once, and
    /// integer addition is commutative — and the ADC decision points
    /// (zero skip, saturation test, `sample`) still see the identical
    /// per-(cycle, slice) sums, so the output is bitwise identical to the
    /// reference loop.
    ///
    /// Returns the accumulated column output and the number of samples
    /// whose pre-ADC sum exceeded the ADC full scale (saturations). Zero
    /// sums never saturate, so the zero-skip shortcut cannot miss one.
    ///
    /// `in_planes` must hold `cycles * dac` input bit planes of
    /// `words_per_col` words each, least-significant bit first.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn column_bit_serial(
        &self,
        j: usize,
        in_planes: &[u64],
        dac: u32,
        cycles: u32,
        cell_bits: u32,
        adc: &Adc,
        skipped_words: &mut u64,
    ) -> (i64, u64) {
        let wpc = self.words_per_col;
        let col = j * wpc;
        let full_scale = adc.full_scale();
        let mut acc = 0i64;
        let mut saturations = 0u64;
        let n_in = cycles * dac;
        if cycles as usize > MAX_CYCLES {
            // Inputs deeper than 64 DAC cycles cannot come from `u64`
            // codes; keep the narrow reference formulation as a fallback.
            for cycle in 0..cycles {
                let shift_in = cycle * dac;
                for (s, slice) in self.slices.iter().enumerate() {
                    let pos = plane_sum(&slice.pos, col, wpc, in_planes, shift_in, dac);
                    let neg = plane_sum(&slice.neg, col, wpc, in_planes, shift_in, dac);
                    if pos == 0 && neg == 0 {
                        continue; // sample(0) == 0: skipping cannot change acc
                    }
                    saturations += u64::from(pos > full_scale) + u64::from(neg > full_scale);
                    let shift = shift_in + s as u32 * cell_bits;
                    acc += (adc.sample(pos) as i64 - adc.sample(neg) as i64) << shift;
                }
            }
            return (acc, saturations);
        }
        let c = cycles as usize;
        let mut pos_sums = [0u64; MAX_CYCLES];
        let mut neg_sums = [0u64; MAX_CYCLES];
        for (s, slice) in self.slices.iter().enumerate() {
            pos_sums[..c].fill(0);
            neg_sums[..c].fill(0);
            accumulate_plane_sums(
                &slice.pos,
                j,
                col,
                wpc,
                in_planes,
                n_in,
                dac,
                &mut pos_sums[..c],
                skipped_words,
            );
            accumulate_plane_sums(
                &slice.neg,
                j,
                col,
                wpc,
                in_planes,
                n_in,
                dac,
                &mut neg_sums[..c],
                skipped_words,
            );
            for cycle in 0..cycles {
                let pos = pos_sums[cycle as usize];
                let neg = neg_sums[cycle as usize];
                if pos == 0 && neg == 0 {
                    continue; // sample(0) == 0: skipping cannot change acc
                }
                saturations += u64::from(pos > full_scale) + u64::from(neg > full_scale);
                let shift = cycle * dac + s as u32 * cell_bits;
                acc += (adc.sample(pos) as i64 - adc.sample(neg) as i64) << shift;
            }
        }
        (acc, saturations)
    }

    /// Non-ideal bit-serial MVM of one column: the noise-aware fast path
    /// of the compiled engine's [`crate::noise::NonIdealPolicy`]. The
    /// integer per-(cycle, slice) pre-ADC sums are accumulated exactly as
    /// in [`PackedTile::column_bit_serial`] (widened popcount kernel),
    /// then each differential sample is perturbed *before* the ADC:
    /// scaled by the column-mean IR attenuation `att` and offset by
    /// `sigma · N(0, 1)` drawn from the caller's per-element RNG, and
    /// digitised with [`Adc::sample_analog`]. Draw order is fixed —
    /// slice-outer, cycle-inner, positive polarity before negative, no
    /// zero-skip — so a given RNG seed always yields the same output
    /// regardless of chunking or thread count.
    ///
    /// With `att == 1.0` and `sigma == 0.0` the perturbed sample is the
    /// exact integer sum (`sample_analog` rounds integers losslessly), so
    /// the output and the saturation count are bitwise identical to the
    /// clean kernel's.
    ///
    /// Saturations count perturbed pre-ADC values above the full scale,
    /// mirroring the clean kernel's definition on the analog lattice.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn column_bit_serial_nonideal(
        &self,
        j: usize,
        in_planes: &[u64],
        dac: u32,
        cycles: u32,
        cell_bits: u32,
        adc: &Adc,
        att: f64,
        sigma: f64,
        rng: &mut SeededRng,
        skipped_words: &mut u64,
    ) -> (i64, u64, u64) {
        let wpc = self.words_per_col;
        let col = j * wpc;
        let full_scale = adc.full_scale() as f64;
        let mut acc = 0i64;
        let mut saturations = 0u64;
        let mut draws = 0u64;
        let n_in = cycles * dac;
        let mut perturb = |sum: u64, rng: &mut SeededRng| -> f64 {
            let mut v = sum as f64 * att;
            if sigma > 0.0 {
                v += sigma * f64::from(rng.sample_standard_normal());
                draws += 1;
            }
            v
        };
        if cycles as usize > MAX_CYCLES {
            // Deep-input fallback, mirroring the clean kernel's.
            for cycle in 0..cycles {
                let shift_in = cycle * dac;
                for (s, slice) in self.slices.iter().enumerate() {
                    let pos = plane_sum(&slice.pos, col, wpc, in_planes, shift_in, dac);
                    let neg = plane_sum(&slice.neg, col, wpc, in_planes, shift_in, dac);
                    let pos_v = perturb(pos, rng);
                    let neg_v = perturb(neg, rng);
                    saturations += u64::from(pos_v > full_scale) + u64::from(neg_v > full_scale);
                    let shift = shift_in + s as u32 * cell_bits;
                    acc += (adc.sample_analog(pos_v) as i64 - adc.sample_analog(neg_v) as i64)
                        << shift;
                }
            }
            return (acc, saturations, draws);
        }
        let c = cycles as usize;
        let mut pos_sums = [0u64; MAX_CYCLES];
        let mut neg_sums = [0u64; MAX_CYCLES];
        for (s, slice) in self.slices.iter().enumerate() {
            pos_sums[..c].fill(0);
            neg_sums[..c].fill(0);
            accumulate_plane_sums(
                &slice.pos,
                j,
                col,
                wpc,
                in_planes,
                n_in,
                dac,
                &mut pos_sums[..c],
                skipped_words,
            );
            accumulate_plane_sums(
                &slice.neg,
                j,
                col,
                wpc,
                in_planes,
                n_in,
                dac,
                &mut neg_sums[..c],
                skipped_words,
            );
            for cycle in 0..cycles {
                // No zero-skip: the ADC samples noise on zero sums too.
                let pos_v = perturb(pos_sums[cycle as usize], rng);
                let neg_v = perturb(neg_sums[cycle as usize], rng);
                saturations += u64::from(pos_v > full_scale) + u64::from(neg_v > full_scale);
                let shift = cycle * dac + s as u32 * cell_bits;
                acc += (adc.sample_analog(pos_v) as i64 - adc.sample_analog(neg_v) as i64) << shift;
            }
        }
        (acc, saturations, draws)
    }

    /// Occupancy-indexed bit-serial MVM of one column: identical ADC
    /// decision sequence to [`PackedTile::column_bit_serial`], but the
    /// popcount accumulation iterates only words in the intersection of
    /// the input-plane and level-plane occupancy bitmaps — all-zero input
    /// planes, all-zero level columns, and words outside the intersection
    /// are skipped without a load. Every skipped operand has popcount
    /// zero, so the per-(cycle, slice) sums — and therefore the output
    /// and the saturation count — are bitwise identical to the dense
    /// kernel's.
    ///
    /// `in_planes` / `in_occ` come from a [`PackedInputs`] pack of the
    /// same geometry; `n_nonzero_in` is its count of non-empty input
    /// planes (used only for skip accounting). Falls back to the dense
    /// kernel when the occupancy bitmaps are not word-exact
    /// (`words_per_col > 64`) or the input is deeper than [`MAX_CYCLES`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn column_bit_serial_indexed(
        &self,
        j: usize,
        in_planes: &[u64],
        in_occ: &[u64],
        n_nonzero_in: u32,
        dac: u32,
        cycles: u32,
        cell_bits: u32,
        adc: &Adc,
        skips: &mut SkipStats,
    ) -> (i64, u64) {
        let wpc = self.words_per_col;
        if cycles as usize > MAX_CYCLES || wpc > 64 {
            return self.column_bit_serial(
                j,
                in_planes,
                dac,
                cycles,
                cell_bits,
                adc,
                &mut skips.words,
            );
        }
        let col = j * wpc;
        let full_scale = adc.full_scale();
        let mut acc = 0i64;
        let mut saturations = 0u64;
        let n_in = cycles * dac;
        let c = cycles as usize;
        let mut pos_sums = [0u64; MAX_CYCLES];
        let mut neg_sums = [0u64; MAX_CYCLES];
        for (s, slice) in self.slices.iter().enumerate() {
            pos_sums[..c].fill(0);
            neg_sums[..c].fill(0);
            accumulate_plane_sums_indexed(
                &slice.pos,
                j,
                col,
                wpc,
                in_planes,
                in_occ,
                n_in,
                dac,
                n_nonzero_in,
                &mut pos_sums[..c],
                skips,
            );
            accumulate_plane_sums_indexed(
                &slice.neg,
                j,
                col,
                wpc,
                in_planes,
                in_occ,
                n_in,
                dac,
                n_nonzero_in,
                &mut neg_sums[..c],
                skips,
            );
            for cycle in 0..cycles {
                let pos = pos_sums[cycle as usize];
                let neg = neg_sums[cycle as usize];
                if pos == 0 && neg == 0 {
                    continue; // sample(0) == 0: skipping cannot change acc
                }
                saturations += u64::from(pos > full_scale) + u64::from(neg > full_scale);
                let shift = cycle * dac + s as u32 * cell_bits;
                acc += (adc.sample(pos) as i64 - adc.sample(neg) as i64) << shift;
            }
        }
        (acc, saturations)
    }

    /// Ideal (no-ADC) integer MVM of one column: every
    /// (input bit, slice, level bit) cross term accumulates exactly, so
    /// the result equals the direct `Σ_r x_r · w_{r,j}`.
    ///
    /// `in_planes` must hold `n_in_planes` input bit planes.
    pub(crate) fn column_ideal(
        &self,
        j: usize,
        in_planes: &[u64],
        n_in_planes: u32,
        cell_bits: u32,
    ) -> i64 {
        let wpc = self.words_per_col;
        let col = j * wpc;
        let mut acc = 0i64;
        if n_in_planes as usize > MAX_CYCLES {
            // Same >64-planes fallback as `column_bit_serial`.
            for (s, slice) in self.slices.iter().enumerate() {
                let base = s as u32 * cell_bits;
                for (planes, sign) in [(&slice.pos, 1i64), (&slice.neg, -1i64)] {
                    for plane in planes {
                        let words = &plane.words[col..col + wpc];
                        for p in 0..n_in_planes {
                            let ip = &in_planes[p as usize * wpc..][..wpc];
                            let cnt: i64 = words
                                .iter()
                                .zip(ip)
                                .map(|(a, b)| i64::from((a & b).count_ones()))
                                .sum();
                            acc += sign * (cnt << (base + plane.bit + p));
                        }
                    }
                }
            }
            return acc;
        }
        // Widened path: with `dac = 1` every input plane is its own
        // "cycle", so `sums[p]` collects `Σ_planes cnt << plane.bit` and
        // the per-plane shift `base + p` distributes over the sum exactly
        // (all integer arithmetic, no overflow at tile scale).
        let n = n_in_planes as usize;
        let mut sums = [0u64; MAX_CYCLES];
        let mut skipped = 0u64;
        for (s, slice) in self.slices.iter().enumerate() {
            let base = s as u32 * cell_bits;
            for (planes, sign) in [(&slice.pos, 1i64), (&slice.neg, -1i64)] {
                sums[..n].fill(0);
                accumulate_plane_sums(
                    planes,
                    j,
                    col,
                    wpc,
                    in_planes,
                    n_in_planes,
                    1,
                    &mut sums[..n],
                    &mut skipped,
                );
                for (p, &sum) in sums[..n].iter().enumerate() {
                    acc += sign * ((sum as i64) << (base + p as u32));
                }
            }
        }
        acc
    }

    /// Rows with a non-zero stored weight in column `j`: the OR of every
    /// stored plane's column mask, popcounted. `scratch` must hold
    /// `words_per_col` words and is overwritten.
    pub(crate) fn column_active_rows(&self, j: usize, scratch: &mut [u64]) -> usize {
        scratch.fill(0);
        let col = j * self.words_per_col;
        for slice in &self.slices {
            for plane in slice.pos.iter().chain(&slice.neg) {
                for (m, w) in scratch
                    .iter_mut()
                    .zip(&plane.words[col..col + self.words_per_col])
                {
                    *m |= w;
                }
            }
        }
        scratch.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Cap on the per-column stack arrays of the widened kernels: `u64`
/// input codes have at most 64 bit planes, so at most 64 DAC cycles.
const MAX_CYCLES: usize = 64;

/// Portable 4-lane popcount accumulator: four independent `u64` sums the
/// optimiser can keep in one vector register (or four scalars) — no
/// `unsafe`, no arch intrinsics, identical arithmetic on every target.
#[derive(Debug, Clone, Copy, Default)]
struct U64x4([u64; 4]);

impl U64x4 {
    /// Adds `popcount(w & b[lane])` into each lane.
    #[inline(always)]
    fn add_popcounts(&mut self, w: u64, b: [u64; 4]) {
        self.0[0] += u64::from((w & b[0]).count_ones());
        self.0[1] += u64::from((w & b[1]).count_ones());
        self.0[2] += u64::from((w & b[2]).count_ones());
        self.0[3] += u64::from((w & b[3]).count_ones());
    }
}

/// Widened pre-ADC accumulation of one polarity's planes for one column:
/// one pass over the stored planes fills the per-cycle sums for **all**
/// cycles, walking four input planes per iteration so each weight-plane
/// word is loaded once per four input bits ([`U64x4`] keeps the four
/// popcount chains independent). Level planes whose column-`j` occupancy
/// bitmap is empty contribute zero to every sum and are skipped up front
/// (`skipped_words` counts the loads avoided — the CP-pruning payoff).
/// Input plane `p` contributes `popcount << (plane.bit + p % dac)` to
/// `sums[p / dac]` — exactly the cross terms [`plane_sum`] produces cycle
/// by cycle, in a different (integer-commutative, therefore
/// bitwise-equal) order.
#[inline]
#[allow(clippy::too_many_arguments)]
fn accumulate_plane_sums(
    planes: &[BitPlane],
    j: usize,
    col: usize,
    wpc: usize,
    in_planes: &[u64],
    n_in: u32,
    dac: u32,
    sums: &mut [u64],
    skipped_words: &mut u64,
) {
    for plane in planes {
        if plane.occ[j] == 0 {
            *skipped_words += u64::from(n_in) * wpc as u64;
            continue;
        }
        let words = &plane.words[col..col + wpc];
        let mut p = 0u32;
        while p + 4 <= n_in {
            let base = p as usize * wpc;
            let ip0 = &in_planes[base..base + wpc];
            let ip1 = &in_planes[base + wpc..base + 2 * wpc];
            let ip2 = &in_planes[base + 2 * wpc..base + 3 * wpc];
            let ip3 = &in_planes[base + 3 * wpc..base + 4 * wpc];
            let mut acc = U64x4::default();
            for (k, &w) in words.iter().enumerate() {
                acc.add_popcounts(w, [ip0[k], ip1[k], ip2[k], ip3[k]]);
            }
            for (lane, cnt) in acc.0.into_iter().enumerate() {
                let pl = p + lane as u32;
                sums[(pl / dac) as usize] += cnt << (plane.bit + pl % dac);
            }
            p += 4;
        }
        // Scalar tail: fewer than 4 planes left (n_in % 4).
        while p < n_in {
            let ip = &in_planes[p as usize * wpc..][..wpc];
            let cnt: u64 = words
                .iter()
                .zip(ip)
                .map(|(a, b)| u64::from((a & b).count_ones()))
                .sum();
            sums[(p / dac) as usize] += cnt << (plane.bit + p % dac);
            p += 1;
        }
    }
}

/// Occupancy-indexed counterpart of [`accumulate_plane_sums`]: for every
/// (stored level plane, non-empty input plane) pair, only words in the
/// intersection of the two occupancy bitmaps are loaded and popcounted.
/// Empty input planes cost one bitmap load; an empty intersection costs
/// no word loads at all. Every omitted word has `popcount(a & b) == 0`,
/// so the sums are bitwise identical to the dense accumulation. Requires
/// word-exact bitmaps (`wpc ≤ 64`; the caller guarantees it).
#[inline]
#[allow(clippy::too_many_arguments)]
fn accumulate_plane_sums_indexed(
    planes: &[BitPlane],
    j: usize,
    col: usize,
    wpc: usize,
    in_planes: &[u64],
    in_occ: &[u64],
    n_in: u32,
    dac: u32,
    n_nonzero_in: u32,
    sums: &mut [u64],
    skips: &mut SkipStats,
) {
    for plane in planes {
        let lv = plane.occ[j];
        if lv == 0 {
            skips.words += u64::from(n_nonzero_in) * wpc as u64;
            continue;
        }
        let words = &plane.words[col..col + wpc];
        for p in 0..n_in as usize {
            let io = in_occ[p];
            if io == 0 {
                continue; // counted once per column task as a skipped plane
            }
            let inter = lv & io;
            skips.words += wpc as u64 - u64::from(inter.count_ones());
            if inter == 0 {
                continue;
            }
            let ip = &in_planes[p * wpc..(p + 1) * wpc];
            let mut cnt = 0u64;
            let mut m = inter;
            while m != 0 {
                let k = m.trailing_zeros() as usize;
                cnt += u64::from((words[k] & ip[k]).count_ones());
                m &= m - 1;
            }
            sums[p / dac as usize] += cnt << (plane.bit + p as u32 % dac);
        }
    }
}

/// Pre-ADC sum contribution of one polarity's planes for one column and
/// one DAC cycle: `Σ_planes Σ_d 2^(plane.bit + d) · popcount(...)`.
/// Reference formulation, kept for the deep-input (>64 cycles) fallback
/// and as the unwidened oracle in unit tests.
#[inline]
fn plane_sum(
    planes: &[BitPlane],
    col: usize,
    wpc: usize,
    in_planes: &[u64],
    shift_in: u32,
    dac: u32,
) -> u64 {
    let mut sum = 0u64;
    for plane in planes {
        let words = &plane.words[col..col + wpc];
        for d in 0..dac {
            let ip = &in_planes[(shift_in + d) as usize * wpc..][..wpc];
            let cnt: u64 = words
                .iter()
                .zip(ip)
                .map(|(a, b)| u64::from((a & b).count_ones()))
                .sum();
            sum += cnt << (plane.bit + d);
        }
    }
    sum
}

/// Packs one input vector into `n_planes` per-bit row bitmasks of
/// `words_per_col` words each (plane `p` marks rows whose code has bit
/// `p` set). Only set bits are visited, so sparse/low activations pack in
/// proportion to their population count.
pub(crate) fn pack_bit_planes(input: &[u64], n_planes: u32, words_per_col: usize) -> Vec<u64> {
    let mut words = vec![0u64; n_planes as usize * words_per_col];
    for (r, &x) in input.iter().enumerate() {
        scatter_bits(&mut words, x, r, n_planes, words_per_col, 0);
    }
    words
}

/// Packs a batch of input vectors stored in im2col layout — element
/// `(row r, input i)` at `inputs[r * n_inputs + i]` — into input-major
/// planes: plane `p` of input `i` occupies
/// `words[(i * n_planes + p) * words_per_col ..][..words_per_col]`.
///
/// Packing the whole batch in one pass is what the batched entry points
/// amortise: each input's DAC bits are extracted once, instead of once
/// per (cycle, slice) per tile as in the reference loop.
/// Workspace-writing form: packs into `words`, reusing its capacity. The
/// buffer is resized to `n_inputs * n_planes * words_per_col` and zeroed
/// before scattering, so repeat calls at a fixed geometry perform no heap
/// allocation.
pub(crate) fn pack_bit_planes_batch_into(
    inputs: &[u64],
    n_inputs: usize,
    n_planes: u32,
    words_per_col: usize,
    words: &mut Vec<u64>,
) {
    let rows = inputs.len().checked_div(n_inputs).unwrap_or(0);
    words.clear();
    words.resize(n_inputs * n_planes as usize * words_per_col, 0);
    let per_input = n_planes as usize * words_per_col;
    for r in 0..rows {
        for (i, &x) in inputs[r * n_inputs..(r + 1) * n_inputs].iter().enumerate() {
            scatter_bits(words, x, r, n_planes, words_per_col, i * per_input);
        }
    }
}

/// Sets bit `r` of plane `p` (at `base`) for every set bit `p` of `x`.
#[inline]
fn scatter_bits(words: &mut [u64], x: u64, r: usize, n_planes: u32, wpc: usize, base: usize) {
    let (w, mask) = (r / 64, 1u64 << (r % 64));
    let mut v = x;
    while v != 0 {
        let p = v.trailing_zeros();
        if p >= n_planes {
            break;
        }
        words[base + p as usize * wpc + w] |= mask;
        v &= v - 1;
    }
}

/// Which kernel a given input runs under the active [`PackedKernel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KernelPath {
    /// All-zero input: the output column is zero, nothing executes.
    Zero,
    /// Widened dense kernel.
    Dense,
    /// Occupancy-indexed kernel.
    Indexed,
}

/// Occupancy class of one packed input, decided at pack time from its
/// non-zero word count (data only — never scheduling — so the dispatch,
/// and with it every output and metric, is thread-count-invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InputClass {
    /// Every DAC plane is empty.
    Empty,
    /// Under half the plane words are non-zero: intersection skipping
    /// beats the widened dense walk.
    Sparse,
    /// At least half the words are non-zero (or the bitmaps are not
    /// word-exact): the dense kernel's 4-wide chains win.
    Dense,
}

/// A batch of input vectors packed into DAC bit planes together with
/// their word-granular occupancy index — the shared, read-only input
/// representation every tile of a row block consumes. Built by
/// [`PackedInputs::pack`] (held in layer/program workspaces and reused
/// across calls: buffers grow once, then repeat packs at a fixed geometry
/// allocate nothing) and consumed by
/// `Tile::matvec_batch_prepacked_into`, which packs once per row block
/// instead of once per tile.
#[derive(Debug, Clone, Default)]
pub struct PackedInputs {
    /// Input-major planes: plane `p` of input `i` at
    /// `words[(i * n_planes + p) * wpc ..][..wpc]`.
    words: Vec<u64>,
    /// Per (input, plane) occupancy bitmap (bit `k` ⇔ word `k` non-zero,
    /// saturating at bit 63): `occ[i * n_planes + p]`.
    occ: Vec<u64>,
    /// Per input: number of all-zero DAC planes.
    zero_planes: Vec<u32>,
    /// Per input: kernel dispatch class.
    class: Vec<InputClass>,
    rows: usize,
    n_inputs: usize,
    n_planes: u32,
    words_per_col: usize,
}

impl PackedInputs {
    /// Packs `n_inputs` im2col-layout input vectors — element
    /// `(row r, input i)` at `inputs[r * n_inputs + i]` — into bit planes
    /// and builds the occupancy index: per-plane non-zero-word bitmaps,
    /// per-input zero-plane counts, and the pack-time kernel class.
    /// Observes each input's word occupancy on the
    /// `xbar.packed.occupancy` histogram. All buffers are resized in
    /// place, reusing capacity.
    pub fn pack(&mut self, inputs: &[u64], n_inputs: usize, n_planes: u32, words_per_col: usize) {
        let rows = inputs.len().checked_div(n_inputs).unwrap_or(0);
        self.rows = rows;
        self.n_inputs = n_inputs;
        self.n_planes = n_planes;
        self.words_per_col = words_per_col;
        pack_bit_planes_batch_into(inputs, n_inputs, n_planes, words_per_col, &mut self.words);
        let np = n_planes as usize;
        let wpc = words_per_col;
        self.occ.clear();
        self.occ.resize(n_inputs * np, 0);
        self.zero_planes.clear();
        self.class.clear();
        let total_words = (np * wpc) as u64;
        for i in 0..n_inputs {
            let mut nz_words = 0u64;
            let mut zero_planes = 0u32;
            for p in 0..np {
                let mut o = 0u64;
                let plane = &self.words[(i * np + p) * wpc..][..wpc];
                for (k, &w) in plane.iter().enumerate() {
                    if w != 0 {
                        o |= 1u64 << k.min(63);
                        nz_words += 1;
                    }
                }
                self.occ[i * np + p] = o;
                zero_planes += u32::from(o == 0);
            }
            self.zero_planes.push(zero_planes);
            let class = if nz_words == 0 {
                InputClass::Empty
            } else if wpc > 64 || nz_words * 2 >= total_words {
                InputClass::Dense
            } else {
                InputClass::Sparse
            };
            self.class.push(class);
            if let Some(pct) = (nz_words * 100).checked_div(total_words) {
                crate::obs::PACKED_OCCUPANCY.observe(pct);
            }
        }
    }

    /// Rows per input vector of the packed batch.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of packed input vectors.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// DAC bit planes per input (`cycles × dac_bits` at pack time).
    pub fn plane_count(&self) -> u32 {
        self.n_planes
    }

    /// Words per plane bitmask (`⌈rows/64⌉` at pack time).
    pub fn words_per_col(&self) -> usize {
        self.words_per_col
    }

    /// Bytes currently held across the pack buffers.
    pub fn bytes(&self) -> usize {
        (self.words.len() + self.occ.len()) * 8
            + self.zero_planes.len() * 4
            + self.class.len() * std::mem::size_of::<InputClass>()
    }

    /// The bit planes of input `i` (`n_planes × words_per_col` words).
    pub(crate) fn input_planes(&self, i: usize) -> &[u64] {
        let per = self.n_planes as usize * self.words_per_col;
        &self.words[i * per..][..per]
    }

    /// The per-plane occupancy bitmaps of input `i` (`n_planes` words).
    pub(crate) fn input_occ(&self, i: usize) -> &[u64] {
        let np = self.n_planes as usize;
        &self.occ[i * np..][..np]
    }

    /// All-zero DAC planes of input `i`.
    pub(crate) fn zero_plane_count(&self, i: usize) -> u32 {
        self.zero_planes[i]
    }

    /// Kernel an input runs under `mode`. Resolves [`PackedKernel::Auto`]
    /// from the pack-time class; forced modes still short-circuit empty
    /// inputs (except [`PackedKernel::Dense`], the exact pre-occupancy
    /// baseline) and fall back to dense when the bitmaps are not
    /// word-exact.
    pub(crate) fn path(&self, mode: PackedKernel, i: usize) -> KernelPath {
        match (mode, self.class[i]) {
            (PackedKernel::Dense, _) => KernelPath::Dense,
            (_, InputClass::Empty) => KernelPath::Zero,
            (PackedKernel::Occupancy, _) => {
                if self.words_per_col > 64 {
                    KernelPath::Dense
                } else {
                    KernelPath::Indexed
                }
            }
            (PackedKernel::Auto, InputClass::Sparse) => KernelPath::Indexed,
            (PackedKernel::Auto, InputClass::Dense) => KernelPath::Dense,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::mix;

    /// Levels `[slice][row * cols + col]` for a 3×2 block, 2-bit cells.
    fn demo_levels() -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
        // pos slice0: rows x cols = [[1, 0], [3, 2], [0, 0]]
        // pos slice1: all zero -> both its planes must be dropped.
        let pos = vec![vec![1, 0, 3, 2, 0, 0], vec![0; 6]];
        // neg slice0: [[0, 1], [0, 0], [2, 0]]; slice1: [[0,0],[1,0],[0,0]]
        let neg = vec![vec![0, 1, 0, 0, 2, 0], vec![0, 0, 1, 0, 0, 0]];
        (pos, neg)
    }

    #[test]
    fn zero_planes_are_dropped() {
        let (pos, neg) = demo_levels();
        let packed = PackedTile::pack(&pos, &neg, 3, 2, 2);
        assert_eq!(packed.words_per_col(), 1);
        // pos slice0 has bits 0 and 1 somewhere; slice1 is empty.
        assert_eq!(packed.slices[0].pos.len(), 2);
        assert_eq!(packed.slices[1].pos.len(), 0);
        // neg slice0 has bit0 (level 1) and bit1 (level 2); slice1 only bit0.
        assert_eq!(packed.slices[0].neg.len(), 2);
        assert_eq!(packed.slices[1].neg.len(), 1);
        assert_eq!(packed.stored_planes(), 5);
    }

    #[test]
    fn planes_are_column_major_row_masks() {
        let (pos, neg) = demo_levels();
        let packed = PackedTile::pack(&pos, &neg, 3, 2, 2);
        let bit0 = &packed.slices[0].pos[0];
        assert_eq!(bit0.bit, 0);
        // col0: rows 0 (level 1) and 1 (level 3) have bit 0 set -> 0b011.
        assert_eq!(bit0.words[0], 0b011);
        // col1: no level with bit 0 in pos slice0 (levels 0, 2, 0).
        assert_eq!(bit0.words[1], 0b000);
        let bit1 = &packed.slices[0].pos[1];
        assert_eq!(bit1.bit, 1);
        assert_eq!(bit1.words[0], 0b010); // row1 level 3
        assert_eq!(bit1.words[1], 0b010); // row1 level 2
    }

    #[test]
    fn level_occupancy_marks_nonzero_columns() {
        let (pos, neg) = demo_levels();
        let packed = PackedTile::pack(&pos, &neg, 3, 2, 2);
        // pos slice0 bit0: col0 word non-zero, col1 word zero.
        let bit0 = &packed.slices[0].pos[0];
        assert_eq!(bit0.occ, vec![1, 0]);
        // pos slice0 bit1: both columns non-zero.
        assert_eq!(packed.slices[0].pos[1].occ, vec![1, 1]);
        // A zero occupancy column must contribute nothing and be skipped.
        let mut sums = vec![0u64; 4];
        let mut skipped = 0u64;
        let in_planes = vec![u64::MAX; 4];
        accumulate_plane_sums(
            &packed.slices[0].pos[..1],
            1,
            1,
            1,
            &in_planes,
            4,
            1,
            &mut sums,
            &mut skipped,
        );
        assert!(sums.iter().all(|&s| s == 0));
        assert_eq!(skipped, 4);
    }

    #[test]
    fn input_packing_matches_bit_extraction() {
        let input = [5u64, 0, 255, 130, 1];
        let planes = pack_bit_planes(&input, 8, 1);
        for (p, plane) in planes.iter().enumerate() {
            for (r, &x) in input.iter().enumerate() {
                assert_eq!((plane >> r) & 1, (x >> p) & 1, "plane {p} row {r}");
            }
        }
    }

    #[test]
    fn batch_packing_matches_single_packing() {
        // 3 rows x 2 inputs, im2col layout (r, i) -> r * 2 + i.
        let inputs = [7u64, 1, 0, 4, 9, 2];
        let mut batch = Vec::new();
        pack_bit_planes_batch_into(&inputs, 2, 4, 1, &mut batch);
        for i in 0..2 {
            let single: Vec<u64> = (0..3).map(|r| inputs[r * 2 + i]).collect();
            let planes = pack_bit_planes(&single, 4, 1);
            assert_eq!(&batch[i * 4..(i + 1) * 4], &planes[..], "input {i}");
        }
    }

    #[test]
    fn packed_inputs_index_and_classify() {
        // 3 inputs over 2 rows: all-zero, one small code, all-maximal.
        let inputs = [0u64, 1, 15, 0, 0, 15]; // (r, i) at r * 3 + i
        let mut p = PackedInputs::default();
        p.pack(&inputs, 3, 4, 1);
        assert_eq!((p.rows(), p.n_inputs(), p.plane_count()), (2, 3, 4));
        // Input 0 is empty: every plane bitmap zero, 4 zero planes.
        assert_eq!(p.input_occ(0), &[0, 0, 0, 0]);
        assert_eq!(p.zero_plane_count(0), 4);
        assert_eq!(p.path(PackedKernel::Auto, 0), KernelPath::Zero);
        // ...but the Dense baseline never short-circuits.
        assert_eq!(p.path(PackedKernel::Dense, 0), KernelPath::Dense);
        // Input 1 has code 1 in row 0 only: plane 0 occupied, 1 of 4
        // words non-zero -> sparse -> indexed under Auto.
        assert_eq!(p.input_occ(1), &[1, 0, 0, 0]);
        assert_eq!(p.zero_plane_count(1), 3);
        assert_eq!(p.path(PackedKernel::Auto, 1), KernelPath::Indexed);
        // Input 2 has code 15 in both rows: every plane occupied -> dense
        // under Auto, indexed when forced.
        assert_eq!(p.input_occ(2), &[1, 1, 1, 1]);
        assert_eq!(p.zero_plane_count(2), 0);
        assert_eq!(p.path(PackedKernel::Auto, 2), KernelPath::Dense);
        assert_eq!(p.path(PackedKernel::Occupancy, 2), KernelPath::Indexed);
    }

    #[test]
    fn active_rows_ors_every_plane() {
        let (pos, neg) = demo_levels();
        let packed = PackedTile::pack(&pos, &neg, 3, 2, 2);
        let mut scratch = vec![0u64; 1];
        // col0: rows 0, 1 (pos), 1 (neg slice1), 2 (neg) -> 3 active rows.
        assert_eq!(packed.column_active_rows(0, &mut scratch), 3);
        // col1: row 0 (neg), row 1 (pos) -> 2 active rows.
        assert_eq!(packed.column_active_rows(1, &mut scratch), 2);
    }

    #[test]
    fn widened_accumulation_matches_per_cycle_plane_sum() {
        // Pseudo-random 70×3 tile (2 words/col) with 3-bit cells: every
        // widened lane, the scalar tail (n_in = 6 and 7), and multi-word
        // columns are exercised against the narrow reference formulation.
        let rows = 70;
        let cols = 3;
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let pos: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..rows * cols).map(|_| next() % 8).collect())
            .collect();
        let neg: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..rows * cols).map(|_| next() % 8).collect())
            .collect();
        let packed = PackedTile::pack(&pos, &neg, rows, cols, 3);
        let wpc = packed.words_per_col();
        for &(dac, cycles) in &[(1u32, 7u32), (2, 3), (4, 2), (3, 2)] {
            let n_in = dac * cycles;
            let in_planes: Vec<u64> = (0..n_in as usize * wpc).map(|_| next()).collect();
            for j in 0..cols {
                let col = j * wpc;
                for slice in &packed.slices {
                    for planes in [&slice.pos, &slice.neg] {
                        let mut widened = vec![0u64; cycles as usize];
                        let mut skipped = 0u64;
                        accumulate_plane_sums(
                            planes,
                            j,
                            col,
                            wpc,
                            &in_planes,
                            n_in,
                            dac,
                            &mut widened,
                            &mut skipped,
                        );
                        for cycle in 0..cycles {
                            let narrow = plane_sum(planes, col, wpc, &in_planes, cycle * dac, dac);
                            assert_eq!(
                                widened[cycle as usize], narrow,
                                "dac={dac} cycle={cycle} col={j}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn indexed_accumulation_matches_dense_on_sparse_inputs() {
        // 70×3 tile again, but with sparse inputs (single word / single
        // plane occupied) so the intersection loop, the empty-plane skip,
        // and the empty-column skip all fire.
        let rows = 70;
        let cols = 3;
        let mut state = 0x0123_4567_89ab_cdefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let pos: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                (0..rows * cols)
                    .map(|i| if i % 5 == 0 { next() % 8 } else { 0 })
                    .collect()
            })
            .collect();
        let neg = vec![vec![0u64; rows * cols]; 2];
        let packed = PackedTile::pack(&pos, &neg, rows, cols, 3);
        let wpc = packed.words_per_col();
        for &(dac, cycles) in &[(1u32, 6u32), (2, 3), (3, 2)] {
            let n_in = dac * cycles;
            // Sparse planes: zero out most words, leave plane 0 dense.
            let in_planes: Vec<u64> = (0..n_in as usize * wpc)
                .map(|k| if k < wpc || k % 3 == 0 { next() } else { 0 })
                .collect();
            let in_occ: Vec<u64> = (0..n_in as usize)
                .map(|p| {
                    let mut o = 0u64;
                    for k in 0..wpc {
                        if in_planes[p * wpc + k] != 0 {
                            o |= 1 << k;
                        }
                    }
                    o
                })
                .collect();
            let n_nonzero = in_occ.iter().filter(|&&o| o != 0).count() as u32;
            for j in 0..cols {
                let col = j * wpc;
                for slice in &packed.slices {
                    for planes in [&slice.pos, &slice.neg] {
                        let mut dense = vec![0u64; cycles as usize];
                        let mut indexed = vec![0u64; cycles as usize];
                        let (mut skipped, mut skips) = (0u64, SkipStats::default());
                        accumulate_plane_sums(
                            planes,
                            j,
                            col,
                            wpc,
                            &in_planes,
                            n_in,
                            dac,
                            &mut dense,
                            &mut skipped,
                        );
                        accumulate_plane_sums_indexed(
                            planes,
                            j,
                            col,
                            wpc,
                            &in_planes,
                            &in_occ,
                            n_in,
                            dac,
                            n_nonzero,
                            &mut indexed,
                            &mut skips,
                        );
                        assert_eq!(dense, indexed, "dac={dac} col={j}");
                    }
                }
            }
        }
    }

    #[test]
    fn nonideal_kernel_with_identity_policy_is_bitwise_clean() {
        // att = 1.0, sigma = 0 must reproduce the clean kernel exactly —
        // output and saturation count — including on saturating ADCs.
        let rows = 70;
        let cols = 3;
        let mut state = 0x5DEE_CE66_D155_77AAu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let pos: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..rows * cols).map(|_| next() % 8).collect())
            .collect();
        let neg: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..rows * cols).map(|_| next() % 8).collect())
            .collect();
        let packed = PackedTile::pack(&pos, &neg, rows, cols, 3);
        let wpc = packed.words_per_col();
        for adc_bits in [3u32, 12] {
            let adc = Adc::new(adc_bits).unwrap();
            for &(dac, cycles) in &[(1u32, 7u32), (2, 3), (4, 2)] {
                let n_in = dac * cycles;
                let in_planes: Vec<u64> = (0..n_in as usize * wpc).map(|_| next()).collect();
                for j in 0..cols {
                    let mut skipped = 0u64;
                    let clean =
                        packed.column_bit_serial(j, &in_planes, dac, cycles, 3, &adc, &mut skipped);
                    let mut rng = SeededRng::new(mix(0xCAFE, j as u64));
                    let mut skipped2 = 0u64;
                    let (acc, sats, draws) = packed.column_bit_serial_nonideal(
                        j,
                        &in_planes,
                        dac,
                        cycles,
                        3,
                        &adc,
                        1.0,
                        0.0,
                        &mut rng,
                        &mut skipped2,
                    );
                    assert_eq!((acc, sats), clean, "adc={adc_bits} dac={dac} col={j}");
                    assert_eq!(draws, 0, "sigma = 0 must not touch the RNG");
                }
            }
        }
    }

    #[test]
    fn nonideal_kernel_noise_is_seed_deterministic() {
        let (pos, neg) = demo_levels();
        let packed = PackedTile::pack(&pos, &neg, 3, 2, 2);
        let adc = Adc::new(6).unwrap();
        let in_planes: Vec<u64> = vec![0b111, 0b101, 0b011, 0b001];
        let run = |seed: u64| {
            let mut rng = SeededRng::new(seed);
            let mut skipped = 0u64;
            packed.column_bit_serial_nonideal(
                0,
                &in_planes,
                2,
                2,
                2,
                &adc,
                0.9,
                2.0,
                &mut rng,
                &mut skipped,
            )
        };
        let (a1, s1, d1) = run(7);
        let (a2, s2, d2) = run(7);
        assert_eq!((a1, s1, d1), (a2, s2, d2));
        assert!(d1 > 0);
        // A different stream seed perturbs differently (overwhelmingly).
        let outputs: Vec<i64> = (0..8).map(|k| run(1000 + k).0).collect();
        assert!(outputs.iter().any(|&o| o != a1));
    }

    #[test]
    fn kernel_mode_round_trips() {
        assert_eq!(packed_kernel(), PackedKernel::Auto);
        set_packed_kernel(PackedKernel::Dense);
        assert_eq!(packed_kernel(), PackedKernel::Dense);
        set_packed_kernel(PackedKernel::Occupancy);
        assert_eq!(packed_kernel(), PackedKernel::Occupancy);
        set_packed_kernel(PackedKernel::Auto);
        assert_eq!(packed_kernel(), PackedKernel::Auto);
    }

    #[test]
    fn rows_past_64_use_the_second_word() {
        let rows = 70;
        let pos = vec![(0..rows).map(|r| u64::from(r >= 66)).collect::<Vec<_>>()];
        let neg = vec![vec![0u64; rows]];
        let packed = PackedTile::pack(&pos, &neg, rows, 1, 1);
        assert_eq!(packed.words_per_col(), 2);
        let mut scratch = vec![0u64; 2];
        assert_eq!(packed.column_active_rows(0, &mut scratch), 4);
        let plane = &packed.slices[0].pos[0];
        assert_eq!(plane.words[0], 0);
        assert_eq!(plane.words[1], 0b1111 << 2); // rows 66..=69
        assert_eq!(plane.occ[0], 0b10); // word 1 occupied only
    }
}
