//! Bit-plane-packed popcount kernels for the bit-serial crossbar datapath.
//!
//! The reference MVM in [`crate::tile`] walks a column × cycle × slice ×
//! row quadruple loop with stride-`cols` cell accesses. This module packs
//! the same data into machine words so the inner row loop collapses to a
//! handful of `AND` + `popcount` operations:
//!
//! * **Level planes.** Each polarity/slice of the tile is decomposed into
//!   per-bit planes: plane `b` of a slice is the set of cells whose level
//!   has bit `b` set, stored as **column-major row bitmasks** — column `j`
//!   owns `words_per_col = ⌈rows/64⌉` consecutive `u64` words, bit `r` of
//!   the mask marking row `r`. A plane that is zero everywhere (common
//!   after column-proportional pruning, which zeroes whole weights and
//!   thus every bit of every slice they occupy) is dropped at pack time
//!   and costs nothing per MVM.
//! * **Input planes.** An input vector is packed once into per-bit row
//!   bitmasks the same way; the bits a DAC streams in cycle `c` are
//!   exactly input planes `c·dac_bits .. (c+1)·dac_bits`.
//!
//! The per-column pre-ADC sum of cycle `c` and slice `s` then becomes
//!
//! ```text
//! Σ_r bits_r · level_{r,j}
//!   = Σ_d Σ_b 2^(d+b) · popcount(input_plane_{c·dac+d} & level_plane_b[j])
//! ```
//!
//! which is an identity over the integers — every cross term of the two
//! binary expansions is counted exactly once — so the packed kernel feeds
//! the ADC the *same* integer column sums as the reference loop and its
//! output is bitwise identical, saturation included. All accumulation is
//! integer, so results are also invariant to any chunking or thread count.
//!
//! The hot kernels are additionally **widened**: instead of one popcount
//! chain per (cycle, slice), a single pass per stored plane walks four
//! input planes at a time through a portable [`U64x4`] accumulator,
//! loading each weight-plane word once per four DAC bits and keeping four
//! independent `count_ones` dependency chains in flight. Commutativity of
//! the integer cross-term sum makes the reordering exact (see
//! [`PackedTile::column_bit_serial`]).

use crate::adc::Adc;

/// One non-zero bit plane of a polarity/slice: the set of cells whose
/// level has bit [`BitPlane::bit`] set, as column-major row bitmasks.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BitPlane {
    /// Bit position within the cell level (weight `2^bit`).
    bit: u32,
    /// `cols × words_per_col` words; column `j` owns
    /// `words[j*words_per_col .. (j+1)*words_per_col]`.
    words: Vec<u64>,
}

/// The bit planes of one slice, split by differential polarity. Planes
/// that are zero over the whole tile are omitted.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct SlicePlanes {
    pos: Vec<BitPlane>,
    neg: Vec<BitPlane>,
}

/// Bit-plane-packed view of a tile's cell levels, built once at
/// [`crate::tile::Tile::new`] time and read-only afterwards.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PackedTile {
    rows: usize,
    cols: usize,
    words_per_col: usize,
    /// One entry per weight slice, least-significant first.
    slices: Vec<SlicePlanes>,
}

impl PackedTile {
    /// Packs the tile's cell levels (`[slice][row * cols + col]`, one
    /// `Vec` per polarity) into per-bit column-major planes.
    pub(crate) fn pack(
        pos: &[Vec<u64>],
        neg: &[Vec<u64>],
        rows: usize,
        cols: usize,
        cell_bits: u32,
    ) -> Self {
        let words_per_col = rows.div_ceil(64);
        let pack_polarity = |levels: &[u64]| -> Vec<BitPlane> {
            (0..cell_bits)
                .filter_map(|bit| {
                    let mut words = vec![0u64; cols * words_per_col];
                    let mut any = false;
                    for r in 0..rows {
                        let (w, mask) = (r / 64, 1u64 << (r % 64));
                        for c in 0..cols {
                            if (levels[r * cols + c] >> bit) & 1 == 1 {
                                words[c * words_per_col + w] |= mask;
                                any = true;
                            }
                        }
                    }
                    any.then_some(BitPlane { bit, words })
                })
                .collect()
        };
        let slices = pos
            .iter()
            .zip(neg)
            .map(|(p, n)| SlicePlanes {
                pos: pack_polarity(p),
                neg: pack_polarity(n),
            })
            .collect();
        Self {
            rows,
            cols,
            words_per_col,
            slices,
        }
    }

    /// Words per column bitmask (`⌈rows/64⌉`).
    pub(crate) fn words_per_col(&self) -> usize {
        self.words_per_col
    }

    /// Bit planes stored across all slices/polarities (zero planes have
    /// already been dropped).
    pub(crate) fn stored_planes(&self) -> usize {
        self.slices.iter().map(|s| s.pos.len() + s.neg.len()).sum()
    }

    /// Bit-serial MVM of one column through the ADC: per (cycle, slice)
    /// the positive and negative pre-ADC sums are formed by popcount
    /// accumulation, digitised, and shift-added — the same integer sums
    /// as the reference loop.
    ///
    /// The hot path runs slice-outer: one pass over each polarity's
    /// stored planes fills *all* per-cycle sums at once, processing four
    /// input planes per iteration through a [`U64x4`] accumulator so each
    /// weight-plane word is loaded once per four DAC bits instead of once
    /// per bit. Reordering is exact — every `(input bit × level bit)`
    /// cross term is an integer added once, and integer addition is
    /// commutative — and the ADC decision points (zero skip, saturation
    /// test, `sample`) still see the identical per-(cycle, slice) sums,
    /// so the output is bitwise identical to the reference loop.
    ///
    /// Returns the accumulated column output and the number of samples
    /// whose pre-ADC sum exceeded the ADC full scale (saturations). Zero
    /// sums never saturate, so the zero-skip shortcut cannot miss one.
    ///
    /// `in_planes` must hold `cycles * dac` input bit planes of
    /// `words_per_col` words each, least-significant bit first.
    pub(crate) fn column_bit_serial(
        &self,
        j: usize,
        in_planes: &[u64],
        dac: u32,
        cycles: u32,
        cell_bits: u32,
        adc: &Adc,
    ) -> (i64, u64) {
        let wpc = self.words_per_col;
        let col = j * wpc;
        let full_scale = adc.full_scale();
        let mut acc = 0i64;
        let mut saturations = 0u64;
        let n_in = cycles * dac;
        if cycles as usize > MAX_CYCLES {
            // Inputs deeper than 64 DAC cycles cannot come from `u64`
            // codes; keep the narrow reference formulation as a fallback.
            for cycle in 0..cycles {
                let shift_in = cycle * dac;
                for (s, slice) in self.slices.iter().enumerate() {
                    let pos = plane_sum(&slice.pos, col, wpc, in_planes, shift_in, dac);
                    let neg = plane_sum(&slice.neg, col, wpc, in_planes, shift_in, dac);
                    if pos == 0 && neg == 0 {
                        continue; // sample(0) == 0: skipping cannot change acc
                    }
                    saturations += u64::from(pos > full_scale) + u64::from(neg > full_scale);
                    let shift = shift_in + s as u32 * cell_bits;
                    acc += (adc.sample(pos) as i64 - adc.sample(neg) as i64) << shift;
                }
            }
            return (acc, saturations);
        }
        let c = cycles as usize;
        let mut pos_sums = [0u64; MAX_CYCLES];
        let mut neg_sums = [0u64; MAX_CYCLES];
        for (s, slice) in self.slices.iter().enumerate() {
            pos_sums[..c].fill(0);
            neg_sums[..c].fill(0);
            accumulate_plane_sums(
                &slice.pos,
                col,
                wpc,
                in_planes,
                n_in,
                dac,
                &mut pos_sums[..c],
            );
            accumulate_plane_sums(
                &slice.neg,
                col,
                wpc,
                in_planes,
                n_in,
                dac,
                &mut neg_sums[..c],
            );
            for cycle in 0..cycles {
                let pos = pos_sums[cycle as usize];
                let neg = neg_sums[cycle as usize];
                if pos == 0 && neg == 0 {
                    continue; // sample(0) == 0: skipping cannot change acc
                }
                saturations += u64::from(pos > full_scale) + u64::from(neg > full_scale);
                let shift = cycle * dac + s as u32 * cell_bits;
                acc += (adc.sample(pos) as i64 - adc.sample(neg) as i64) << shift;
            }
        }
        (acc, saturations)
    }

    /// Ideal (no-ADC) integer MVM of one column: every
    /// (input bit, slice, level bit) cross term accumulates exactly, so
    /// the result equals the direct `Σ_r x_r · w_{r,j}`.
    ///
    /// `in_planes` must hold `n_in_planes` input bit planes.
    pub(crate) fn column_ideal(
        &self,
        j: usize,
        in_planes: &[u64],
        n_in_planes: u32,
        cell_bits: u32,
    ) -> i64 {
        let wpc = self.words_per_col;
        let col = j * wpc;
        let mut acc = 0i64;
        if n_in_planes as usize > MAX_CYCLES {
            // Same >64-planes fallback as `column_bit_serial`.
            for (s, slice) in self.slices.iter().enumerate() {
                let base = s as u32 * cell_bits;
                for (planes, sign) in [(&slice.pos, 1i64), (&slice.neg, -1i64)] {
                    for plane in planes {
                        let words = &plane.words[col..col + wpc];
                        for p in 0..n_in_planes {
                            let ip = &in_planes[p as usize * wpc..][..wpc];
                            let cnt: i64 = words
                                .iter()
                                .zip(ip)
                                .map(|(a, b)| i64::from((a & b).count_ones()))
                                .sum();
                            acc += sign * (cnt << (base + plane.bit + p));
                        }
                    }
                }
            }
            return acc;
        }
        // Widened path: with `dac = 1` every input plane is its own
        // "cycle", so `sums[p]` collects `Σ_planes cnt << plane.bit` and
        // the per-plane shift `base + p` distributes over the sum exactly
        // (all integer arithmetic, no overflow at tile scale).
        let n = n_in_planes as usize;
        let mut sums = [0u64; MAX_CYCLES];
        for (s, slice) in self.slices.iter().enumerate() {
            let base = s as u32 * cell_bits;
            for (planes, sign) in [(&slice.pos, 1i64), (&slice.neg, -1i64)] {
                sums[..n].fill(0);
                accumulate_plane_sums(planes, col, wpc, in_planes, n_in_planes, 1, &mut sums[..n]);
                for (p, &sum) in sums[..n].iter().enumerate() {
                    acc += sign * ((sum as i64) << (base + p as u32));
                }
            }
        }
        acc
    }

    /// Rows with a non-zero stored weight in column `j`: the OR of every
    /// stored plane's column mask, popcounted. `scratch` must hold
    /// `words_per_col` words and is overwritten.
    pub(crate) fn column_active_rows(&self, j: usize, scratch: &mut [u64]) -> usize {
        scratch.fill(0);
        let col = j * self.words_per_col;
        for slice in &self.slices {
            for plane in slice.pos.iter().chain(&slice.neg) {
                for (m, w) in scratch
                    .iter_mut()
                    .zip(&plane.words[col..col + self.words_per_col])
                {
                    *m |= w;
                }
            }
        }
        scratch.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Cap on the per-column stack arrays of the widened kernels: `u64`
/// input codes have at most 64 bit planes, so at most 64 DAC cycles.
const MAX_CYCLES: usize = 64;

/// Portable 4-lane popcount accumulator: four independent `u64` sums the
/// optimiser can keep in one vector register (or four scalars) — no
/// `unsafe`, no arch intrinsics, identical arithmetic on every target.
#[derive(Debug, Clone, Copy, Default)]
struct U64x4([u64; 4]);

impl U64x4 {
    /// Adds `popcount(w & b[lane])` into each lane.
    #[inline(always)]
    fn add_popcounts(&mut self, w: u64, b: [u64; 4]) {
        self.0[0] += u64::from((w & b[0]).count_ones());
        self.0[1] += u64::from((w & b[1]).count_ones());
        self.0[2] += u64::from((w & b[2]).count_ones());
        self.0[3] += u64::from((w & b[3]).count_ones());
    }
}

/// Widened pre-ADC accumulation of one polarity's planes for one column:
/// one pass over the stored planes fills the per-cycle sums for **all**
/// cycles, walking four input planes per iteration so each weight-plane
/// word is loaded once per four input bits ([`U64x4`] keeps the four
/// popcount chains independent). Input plane `p` contributes
/// `popcount << (plane.bit + p % dac)` to `sums[p / dac]` — exactly the
/// cross terms [`plane_sum`] produces cycle by cycle, in a different
/// (integer-commutative, therefore bitwise-equal) order.
#[inline]
fn accumulate_plane_sums(
    planes: &[BitPlane],
    col: usize,
    wpc: usize,
    in_planes: &[u64],
    n_in: u32,
    dac: u32,
    sums: &mut [u64],
) {
    for plane in planes {
        let words = &plane.words[col..col + wpc];
        let mut p = 0u32;
        while p + 4 <= n_in {
            let base = p as usize * wpc;
            let ip0 = &in_planes[base..base + wpc];
            let ip1 = &in_planes[base + wpc..base + 2 * wpc];
            let ip2 = &in_planes[base + 2 * wpc..base + 3 * wpc];
            let ip3 = &in_planes[base + 3 * wpc..base + 4 * wpc];
            let mut acc = U64x4::default();
            for (k, &w) in words.iter().enumerate() {
                acc.add_popcounts(w, [ip0[k], ip1[k], ip2[k], ip3[k]]);
            }
            for (lane, cnt) in acc.0.into_iter().enumerate() {
                let pl = p + lane as u32;
                sums[(pl / dac) as usize] += cnt << (plane.bit + pl % dac);
            }
            p += 4;
        }
        // Scalar tail: fewer than 4 planes left (n_in % 4).
        while p < n_in {
            let ip = &in_planes[p as usize * wpc..][..wpc];
            let cnt: u64 = words
                .iter()
                .zip(ip)
                .map(|(a, b)| u64::from((a & b).count_ones()))
                .sum();
            sums[(p / dac) as usize] += cnt << (plane.bit + p % dac);
            p += 1;
        }
    }
}

/// Pre-ADC sum contribution of one polarity's planes for one column and
/// one DAC cycle: `Σ_planes Σ_d 2^(plane.bit + d) · popcount(...)`.
/// Reference formulation, kept for the deep-input (>64 cycles) fallback
/// and as the unwidened oracle in unit tests.
#[inline]
fn plane_sum(
    planes: &[BitPlane],
    col: usize,
    wpc: usize,
    in_planes: &[u64],
    shift_in: u32,
    dac: u32,
) -> u64 {
    let mut sum = 0u64;
    for plane in planes {
        let words = &plane.words[col..col + wpc];
        for d in 0..dac {
            let ip = &in_planes[(shift_in + d) as usize * wpc..][..wpc];
            let cnt: u64 = words
                .iter()
                .zip(ip)
                .map(|(a, b)| u64::from((a & b).count_ones()))
                .sum();
            sum += cnt << (plane.bit + d);
        }
    }
    sum
}

/// Packs one input vector into `n_planes` per-bit row bitmasks of
/// `words_per_col` words each (plane `p` marks rows whose code has bit
/// `p` set). Only set bits are visited, so sparse/low activations pack in
/// proportion to their population count.
pub(crate) fn pack_bit_planes(input: &[u64], n_planes: u32, words_per_col: usize) -> Vec<u64> {
    let mut words = vec![0u64; n_planes as usize * words_per_col];
    for (r, &x) in input.iter().enumerate() {
        scatter_bits(&mut words, x, r, n_planes, words_per_col, 0);
    }
    words
}

/// Packs a batch of input vectors stored in im2col layout — element
/// `(row r, input i)` at `inputs[r * n_inputs + i]` — into input-major
/// planes: plane `p` of input `i` occupies
/// `words[(i * n_planes + p) * words_per_col ..][..words_per_col]`.
///
/// Packing the whole batch in one pass is what the batched entry points
/// amortise: each input's DAC bits are extracted once, instead of once
/// per (cycle, slice) per tile as in the reference loop.
/// Workspace-writing form: packs into `words`, reusing its capacity. The
/// buffer is resized to `n_inputs * n_planes * words_per_col` and zeroed
/// before scattering, so repeat calls at a fixed geometry perform no heap
/// allocation.
pub(crate) fn pack_bit_planes_batch_into(
    inputs: &[u64],
    n_inputs: usize,
    n_planes: u32,
    words_per_col: usize,
    words: &mut Vec<u64>,
) {
    let rows = inputs.len().checked_div(n_inputs).unwrap_or(0);
    words.clear();
    words.resize(n_inputs * n_planes as usize * words_per_col, 0);
    let per_input = n_planes as usize * words_per_col;
    for r in 0..rows {
        for (i, &x) in inputs[r * n_inputs..(r + 1) * n_inputs].iter().enumerate() {
            scatter_bits(words, x, r, n_planes, words_per_col, i * per_input);
        }
    }
}

/// Sets bit `r` of plane `p` (at `base`) for every set bit `p` of `x`.
#[inline]
fn scatter_bits(words: &mut [u64], x: u64, r: usize, n_planes: u32, wpc: usize, base: usize) {
    let (w, mask) = (r / 64, 1u64 << (r % 64));
    let mut v = x;
    while v != 0 {
        let p = v.trailing_zeros();
        if p >= n_planes {
            break;
        }
        words[base + p as usize * wpc + w] |= mask;
        v &= v - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Levels `[slice][row * cols + col]` for a 3×2 block, 2-bit cells.
    fn demo_levels() -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
        // pos slice0: rows x cols = [[1, 0], [3, 2], [0, 0]]
        // pos slice1: all zero -> both its planes must be dropped.
        let pos = vec![vec![1, 0, 3, 2, 0, 0], vec![0; 6]];
        // neg slice0: [[0, 1], [0, 0], [2, 0]]; slice1: [[0,0],[1,0],[0,0]]
        let neg = vec![vec![0, 1, 0, 0, 2, 0], vec![0, 0, 1, 0, 0, 0]];
        (pos, neg)
    }

    #[test]
    fn zero_planes_are_dropped() {
        let (pos, neg) = demo_levels();
        let packed = PackedTile::pack(&pos, &neg, 3, 2, 2);
        assert_eq!(packed.words_per_col(), 1);
        // pos slice0 has bits 0 and 1 somewhere; slice1 is empty.
        assert_eq!(packed.slices[0].pos.len(), 2);
        assert_eq!(packed.slices[1].pos.len(), 0);
        // neg slice0 has bit0 (level 1) and bit1 (level 2); slice1 only bit0.
        assert_eq!(packed.slices[0].neg.len(), 2);
        assert_eq!(packed.slices[1].neg.len(), 1);
        assert_eq!(packed.stored_planes(), 5);
    }

    #[test]
    fn planes_are_column_major_row_masks() {
        let (pos, neg) = demo_levels();
        let packed = PackedTile::pack(&pos, &neg, 3, 2, 2);
        let bit0 = &packed.slices[0].pos[0];
        assert_eq!(bit0.bit, 0);
        // col0: rows 0 (level 1) and 1 (level 3) have bit 0 set -> 0b011.
        assert_eq!(bit0.words[0], 0b011);
        // col1: no level with bit 0 in pos slice0 (levels 0, 2, 0).
        assert_eq!(bit0.words[1], 0b000);
        let bit1 = &packed.slices[0].pos[1];
        assert_eq!(bit1.bit, 1);
        assert_eq!(bit1.words[0], 0b010); // row1 level 3
        assert_eq!(bit1.words[1], 0b010); // row1 level 2
    }

    #[test]
    fn input_packing_matches_bit_extraction() {
        let input = [5u64, 0, 255, 130, 1];
        let planes = pack_bit_planes(&input, 8, 1);
        for (p, plane) in planes.iter().enumerate() {
            for (r, &x) in input.iter().enumerate() {
                assert_eq!((plane >> r) & 1, (x >> p) & 1, "plane {p} row {r}");
            }
        }
    }

    #[test]
    fn batch_packing_matches_single_packing() {
        // 3 rows x 2 inputs, im2col layout (r, i) -> r * 2 + i.
        let inputs = [7u64, 1, 0, 4, 9, 2];
        let mut batch = Vec::new();
        pack_bit_planes_batch_into(&inputs, 2, 4, 1, &mut batch);
        for i in 0..2 {
            let single: Vec<u64> = (0..3).map(|r| inputs[r * 2 + i]).collect();
            let planes = pack_bit_planes(&single, 4, 1);
            assert_eq!(&batch[i * 4..(i + 1) * 4], &planes[..], "input {i}");
        }
    }

    #[test]
    fn active_rows_ors_every_plane() {
        let (pos, neg) = demo_levels();
        let packed = PackedTile::pack(&pos, &neg, 3, 2, 2);
        let mut scratch = vec![0u64; 1];
        // col0: rows 0, 1 (pos), 1 (neg slice1), 2 (neg) -> 3 active rows.
        assert_eq!(packed.column_active_rows(0, &mut scratch), 3);
        // col1: row 0 (neg), row 1 (pos) -> 2 active rows.
        assert_eq!(packed.column_active_rows(1, &mut scratch), 2);
    }

    #[test]
    fn widened_accumulation_matches_per_cycle_plane_sum() {
        // Pseudo-random 70×3 tile (2 words/col) with 3-bit cells: every
        // widened lane, the scalar tail (n_in = 6 and 7), and multi-word
        // columns are exercised against the narrow reference formulation.
        let rows = 70;
        let cols = 3;
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let pos: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..rows * cols).map(|_| next() % 8).collect())
            .collect();
        let neg: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..rows * cols).map(|_| next() % 8).collect())
            .collect();
        let packed = PackedTile::pack(&pos, &neg, rows, cols, 3);
        let wpc = packed.words_per_col();
        for &(dac, cycles) in &[(1u32, 7u32), (2, 3), (4, 2), (3, 2)] {
            let n_in = dac * cycles;
            let in_planes: Vec<u64> = (0..n_in as usize * wpc).map(|_| next()).collect();
            for j in 0..cols {
                let col = j * wpc;
                for slice in &packed.slices {
                    for planes in [&slice.pos, &slice.neg] {
                        let mut widened = vec![0u64; cycles as usize];
                        accumulate_plane_sums(
                            planes,
                            col,
                            wpc,
                            &in_planes,
                            n_in,
                            dac,
                            &mut widened,
                        );
                        for cycle in 0..cycles {
                            let narrow = plane_sum(planes, col, wpc, &in_planes, cycle * dac, dac);
                            assert_eq!(
                                widened[cycle as usize], narrow,
                                "dac={dac} cycle={cycle} col={j}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rows_past_64_use_the_second_word() {
        let rows = 70;
        let pos = vec![(0..rows).map(|r| u64::from(r >= 66)).collect::<Vec<_>>()];
        let neg = vec![vec![0u64; rows]];
        let packed = PackedTile::pack(&pos, &neg, rows, 1, 1);
        assert_eq!(packed.words_per_col(), 2);
        let mut scratch = vec![0u64; 2];
        assert_eq!(packed.column_active_rows(0, &mut scratch), 4);
        let plane = &packed.slices[0].pos[0];
        assert_eq!(plane.words[0], 0);
        assert_eq!(plane.words[1], 0b1111 << 2); // rows 66..=69
    }
}
