//! Crate-local observability handles (`tinyadc-obs` metrics).
//!
//! Most counters here record *modeled hardware events* — the events the
//! bit-serial datapath would perform on silicon (per
//! [`crate::activity::tile_activity`]), not the software shortcuts the
//! packed kernel takes. Zero-valued column sums that the popcount kernel
//! skips still count as conversions: the ADC would have sampled them.
//! The `xbar.packed.*` sparsity metrics are the exception: they are
//! *software observability* for the occupancy-indexed kernels (work
//! skipped, input occupancy) and deliberately do not feed the hw energy
//! roll-up. All values — hardware-modeled and software alike — are
//! thread-count-invariant because every skip decision derives from
//! packed data, never from scheduling; see `docs/observability.md`.

use tinyadc_obs::{LazyCounter, LazyGauge, LazyHistogram};

/// One per executed tile MVM (batch entry points count each input).
pub(crate) static MATVECS: LazyCounter = LazyCounter::new("xbar.matvecs");
/// Modeled ADC conversions: 2 polarities × slices × columns × cycles per MVM.
pub(crate) static ADC_CONVERSIONS: LazyCounter = LazyCounter::new("xbar.adc.conversions");
/// Conversions whose pre-ADC column sum exceeded the ADC full scale.
pub(crate) static ADC_SATURATIONS: LazyCounter = LazyCounter::new("xbar.adc.saturations");
/// Modeled DAC bit-drive events: rows × cycles per MVM.
pub(crate) static DAC_EVENTS: LazyCounter = LazyCounter::new("xbar.dac.events");
/// Modeled crossbar column read-outs (one per conversion).
pub(crate) static COLUMN_READS: LazyCounter = LazyCounter::new("xbar.column.reads");
/// Modeled shift-and-add operations (one per conversion).
pub(crate) static SHIFT_ADDS: LazyCounter = LazyCounter::new("xbar.shift_adds");
/// Bit-plane (re)pack operations: tile construction and cell mutation.
pub(crate) static TILE_PACKS: LazyCounter = LazyCounter::new("xbar.tile.packs");
/// Stuck-at faults forced into cells.
pub(crate) static FAULTS_INJECTED: LazyCounter = LazyCounter::new("xbar.faults.injected");
/// SA0 faults that landed on already-zero cells.
pub(crate) static FAULTS_SA0_HARMLESS: LazyCounter = LazyCounter::new("xbar.faults.sa0_harmless");
/// Columns rerouted to spare hardware during repair.
pub(crate) static REPAIR_REMAPPED: LazyCounter = LazyCounter::new("xbar.repair.remapped_columns");
/// Harmful-fault columns left unrepaired (spares exhausted).
pub(crate) static REPAIR_UNREPAIRED: LazyCounter =
    LazyCounter::new("xbar.repair.unrepaired_columns");

/// Tile MVMs executed through the non-ideal (IR-drop / read-noise) packed
/// kernel — the subset of `xbar.matvecs` that ran degraded.
pub(crate) static NOISE_MVMS: LazyCounter = LazyCounter::new("xbar.noise.mvms");
/// Gaussian read-noise samples drawn inside non-ideal MVMs (zero when the
/// policy has no noise term). Data-derived, so thread-count-invariant.
pub(crate) static NOISE_DRAWS: LazyCounter = LazyCounter::new("xbar.noise.draws");

/// Programs built by `CompiledModel::compile` / `from_conv`.
pub(crate) static PROGRAM_COMPILES: LazyCounter = LazyCounter::new("program.compiles");
/// Samples executed through a compiled program (batch entry points count
/// each sample).
pub(crate) static PROGRAM_RUNS: LazyCounter = LazyCounter::new("program.runs");
/// Bytes held by the workspace buffer(s) of the most recent program run —
/// constant once steady state is reached (the zero-allocation contract).
/// Set only from the serial entry points.
pub(crate) static WORKSPACE_BYTES: LazyGauge = LazyGauge::new("program.workspace.bytes");

/// Worst-case activated rows of the tile, observed once per MVM — the
/// paper's Eq. 1 quantity that sizes the ADC.
pub(crate) static ROWS_ACTIVATED: LazyHistogram =
    LazyHistogram::new("xbar.rows.activated", &[1, 2, 4, 8, 16, 32, 64, 128]);
/// Stored bit planes per (re)packed tile — shrinks with CP sparsity.
pub(crate) static PACKED_PLANES: LazyHistogram =
    LazyHistogram::new("xbar.packed.planes", &[2, 4, 8, 12, 16]);

/// All-zero input DAC planes the sparsity-aware packed kernels skipped
/// (software observability, not a modeled hardware event — the silicon
/// DAC would still stream those zero bits). Counted once per column
/// evaluation that consumed the input.
pub(crate) static PACKED_INPUT_PLANES_SKIPPED: LazyCounter =
    LazyCounter::new("xbar.packed.input_planes_skipped");
/// `u64` plane words the packed kernels skipped via the occupancy index
/// (empty level columns plus words outside the input∩level intersection).
/// Software observability, not a modeled hardware event.
pub(crate) static PACKED_WORDS_SKIPPED: LazyCounter = LazyCounter::new("xbar.packed.words_skipped");
/// Percent of plane words non-zero per packed batch input — the pack-time
/// occupancy the kernel dispatch is decided from (post-ReLU activations
/// cluster near the low buckets).
pub(crate) static PACKED_OCCUPANCY: LazyHistogram =
    LazyHistogram::new("xbar.packed.occupancy", &[5, 10, 25, 50, 75, 90, 100]);
