//! ReRAM cell model: multi-level cells, bit slicing, and a VTEAM-style
//! conductance model with process variation.
//!
//! The paper uses 2-bit MLC ReRAM (4 conductance levels) and notes that
//! "using more than 2-3 ReRAM bit cells is not practical", so a quantised
//! weight magnitude is sliced across several cells: an 8-bit weight with
//! 2-bit cells occupies 4 cells, recombined by shift-and-add with weights
//! `4^k` (§III-C). Conductances follow a linear level map between
//! `g_min`/`g_max` (VTEAM-calibrated defaults) with an optional 10 %
//! lognormal process variation, the figure the paper's evaluation assumes.

use crate::{Result, XbarError};
use tinyadc_tensor::rng::SeededRng;

/// Multi-level-cell configuration: how many bits one cell stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellConfig {
    /// Bits per cell (paper default: 2).
    pub bits_per_cell: u32,
}

impl Default for CellConfig {
    fn default() -> Self {
        Self { bits_per_cell: 2 }
    }
}

impl CellConfig {
    /// Validates the configuration (1–4 bits; the paper notes > 2–3 bits
    /// per cell is impractical, 4 is allowed for ablations).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] outside `1..=4`.
    pub fn validate(&self) -> Result<()> {
        if !(1..=4).contains(&self.bits_per_cell) {
            return Err(XbarError::InvalidConfig(format!(
                "bits_per_cell {} must be in 1..=4",
                self.bits_per_cell
            )));
        }
        Ok(())
    }

    /// Number of distinct conductance levels (`2^bits`).
    pub fn levels(&self) -> u64 {
        1 << self.bits_per_cell
    }

    /// Largest level value (`2^bits − 1`).
    pub fn level_max(&self) -> u64 {
        self.levels() - 1
    }

    /// Cells needed to store a magnitude of `magnitude_bits` bits.
    pub fn cells_per_weight(&self, magnitude_bits: u32) -> usize {
        magnitude_bits.div_ceil(self.bits_per_cell) as usize
    }

    /// Slices a non-negative magnitude into cell levels, least-significant
    /// slice first: `value = Σ slice[k] · 2^(bits_per_cell·k)`.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `n_cells` slices (a mapping
    /// bug, not a runtime condition).
    pub fn slice(&self, value: u64, n_cells: usize) -> Vec<u64> {
        let mask = self.level_max();
        let mut out = Vec::with_capacity(n_cells);
        let mut rest = value;
        for _ in 0..n_cells {
            out.push(rest & mask);
            rest >>= self.bits_per_cell;
        }
        assert_eq!(rest, 0, "magnitude {value} does not fit in {n_cells} cells");
        out
    }

    /// Recombines cell slices back into the magnitude.
    pub fn unslice(&self, slices: &[u64]) -> u64 {
        slices
            .iter()
            .rev()
            .fold(0u64, |acc, &s| (acc << self.bits_per_cell) | s)
    }
}

/// VTEAM-style conductance model: linear level→conductance map with
/// optional multiplicative process variation.
///
/// Defaults follow the VTEAM Pt/HfO2/Ti calibration commonly used in
/// crossbar studies: `R_on = 100 kΩ`, `R_off = 10 MΩ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceModel {
    /// Conductance of the fully-on state (level max), in siemens.
    pub g_on: f64,
    /// Conductance of the fully-off state (level 0), in siemens.
    pub g_off: f64,
    /// Relative (1σ) process variation applied multiplicatively
    /// (paper: 10 %).
    pub variation: f64,
}

impl Default for DeviceModel {
    fn default() -> Self {
        Self {
            g_on: 1.0 / 100e3,
            g_off: 1.0 / 10e6,
            variation: 0.10,
        }
    }
}

impl DeviceModel {
    /// Ideal conductance for a cell level under `config`.
    pub fn conductance(&self, level: u64, config: &CellConfig) -> f64 {
        let t = level as f64 / config.level_max() as f64;
        self.g_off + t * (self.g_on - self.g_off)
    }

    /// Conductance with process variation drawn from the seeded RNG
    /// (truncated Gaussian multiplicative noise, floored at 0).
    pub fn conductance_with_variation(
        &self,
        level: u64,
        config: &CellConfig,
        rng: &mut SeededRng,
    ) -> f64 {
        let ideal = self.conductance(level, config);
        let factor = (1.0 + self.variation * rng.sample_standard_normal() as f64).max(0.0);
        ideal * factor
    }

    /// Inverse map: the nearest level for an observed conductance.
    pub fn nearest_level(&self, g: f64, config: &CellConfig) -> u64 {
        let t = ((g - self.g_off) / (self.g_on - self.g_off)).clamp(0.0, 1.0);
        (t * config.level_max() as f64).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_counts() {
        let c = CellConfig::default();
        assert_eq!(c.levels(), 4);
        assert_eq!(c.level_max(), 3);
        assert_eq!(c.cells_per_weight(7), 4);
        assert_eq!(c.cells_per_weight(8), 4);
        assert_eq!(c.cells_per_weight(9), 5);
    }

    #[test]
    fn slice_unslice_round_trip() {
        let c = CellConfig::default();
        for v in 0..=127u64 {
            let slices = c.slice(v, 4);
            assert!(slices.iter().all(|&s| s <= 3));
            assert_eq!(c.unslice(&slices), v);
        }
    }

    #[test]
    fn slice_is_little_endian() {
        let c = CellConfig::default();
        // 0b01_10_11 = 27: slices LSB-first = [3, 2, 1].
        assert_eq!(c.slice(27, 3), vec![3, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_magnitude_panics() {
        CellConfig::default().slice(64, 3); // needs 4 slices
    }

    #[test]
    fn conductance_is_monotone_in_level() {
        let d = DeviceModel::default();
        let c = CellConfig::default();
        let gs: Vec<f64> = (0..=3).map(|l| d.conductance(l, &c)).collect();
        assert!(gs.windows(2).all(|w| w[1] > w[0]));
        assert!((gs[0] - d.g_off).abs() < 1e-12);
        assert!((gs[3] - d.g_on).abs() < 1e-12);
    }

    #[test]
    fn nearest_level_inverts_conductance() {
        let d = DeviceModel::default();
        let c = CellConfig::default();
        for l in 0..=3u64 {
            assert_eq!(d.nearest_level(d.conductance(l, &c), &c), l);
        }
    }

    #[test]
    fn variation_stays_near_ideal() {
        let d = DeviceModel::default();
        let c = CellConfig::default();
        let mut rng = SeededRng::new(4);
        let ideal = d.conductance(3, &c);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| d.conductance_with_variation(3, &c, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean / ideal - 1.0).abs() < 0.02,
            "mean ratio {}",
            mean / ideal
        );
    }

    #[test]
    fn config_validation() {
        assert!(CellConfig { bits_per_cell: 0 }.validate().is_err());
        assert!(CellConfig { bits_per_cell: 5 }.validate().is_err());
        assert!(CellConfig::default().validate().is_ok());
    }
}
