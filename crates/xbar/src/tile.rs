//! A single crossbar tile: bit-sliced, differentially encoded weights and
//! the bit-serial MVM datapath (DAC → analog accumulate → ADC → shift-add).

use crate::adc::Adc;
use crate::cell::{CellConfig, DeviceModel};
use crate::packed::{self, KernelPath, PackedInputs, PackedTile};
use crate::quant::QuantConfig;
use crate::{Result, XbarError};
use std::sync::atomic::{AtomicU64, Ordering};
use tinyadc_prune::CrossbarShape;
use tinyadc_tensor::rng::SeededRng;

/// Worst-case active rows over all columns of a packed tile.
fn compute_activated_rows(packed: &PackedTile, cols: usize) -> usize {
    let mut scratch = vec![0u64; packed.words_per_col()];
    (0..cols)
        .map(|j| packed.column_active_rows(j, &mut scratch))
        .max()
        .unwrap_or(0)
}

/// Full crossbar configuration shared by tiles and layer mappings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XbarConfig {
    /// Crossbar array shape (paper: 128×128).
    pub shape: CrossbarShape,
    /// Cell (MLC) configuration (paper: 2-bit).
    pub cell: CellConfig,
    /// Weight/input quantisation widths (paper/ISAAC: 8/8).
    pub quant: QuantConfig,
    /// DAC bits per streaming cycle (paper: 1).
    pub dac_bits: u32,
}

impl XbarConfig {
    /// The paper's evaluation configuration: 128×128 arrays, 2-bit MLC,
    /// 8-bit weights and inputs, 1-bit DACs.
    pub fn paper_default() -> Self {
        Self {
            shape: CrossbarShape::PAPER_128,
            cell: CellConfig::default(),
            quant: QuantConfig::default(),
            dac_bits: 1,
        }
    }

    /// Validates all sub-configurations.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] for invalid widths or a DAC
    /// wider than the input.
    pub fn validate(&self) -> Result<()> {
        self.cell.validate()?;
        self.quant.validate()?;
        if self.dac_bits == 0 || self.dac_bits > self.quant.input_bits {
            return Err(XbarError::InvalidConfig(format!(
                "dac_bits {} must be in 1..=input_bits ({})",
                self.dac_bits, self.quant.input_bits
            )));
        }
        Ok(())
    }

    /// Streaming cycles per MVM: `⌈input_bits / dac_bits⌉`.
    pub fn cycles(&self) -> u32 {
        self.quant.input_bits.div_ceil(self.dac_bits)
    }

    /// Cells per weight magnitude (`⌈(weight_bits−1) / bits_per_cell⌉`;
    /// the sign bit is carried by the differential pair).
    pub fn cells_per_weight(&self) -> usize {
        self.cell.cells_per_weight(self.quant.weight_bits - 1)
    }

    /// Physical arrays one logical (weight-matrix) block expands to:
    /// two differential polarities × the bit slices.
    pub fn arrays_per_block(&self) -> usize {
        2 * self.cells_per_weight()
    }
}

/// One crossbar tile holding a `rows × cols` block of quantised weights.
///
/// Weights are stored as cell levels: `pos` and `neg` polarities, each
/// with `cells_per_weight` slices laid out `[slice][row * cols + col]`.
/// A bit-plane-packed mirror of the levels (the private `packed` module) is built
/// at construction time and drives the popcount MVM kernels; it is
/// rebuilt whenever the cells are mutated (fault injection).
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    rows: usize,
    cols: usize,
    pos: Vec<Vec<u64>>,
    neg: Vec<Vec<u64>>,
    packed: PackedTile,
    /// Cached worst-case activated rows, recomputed on cell mutation, so
    /// the per-MVM histogram observation is O(1).
    activated_rows: usize,
    config: XbarConfig,
}

impl Tile {
    /// Builds a tile from a block of signed weight codes, row-major
    /// `rows × cols`.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] when the block exceeds the
    /// crossbar shape, a code exceeds the quantised range, or the config
    /// is invalid.
    pub fn new(codes: &[i64], rows: usize, cols: usize, config: XbarConfig) -> Result<Self> {
        config.validate()?;
        if rows == 0 || cols == 0 || rows > config.shape.rows() || cols > config.shape.cols() {
            return Err(XbarError::InvalidConfig(format!(
                "block {rows}x{cols} exceeds crossbar {}",
                config.shape
            )));
        }
        if codes.len() != rows * cols {
            return Err(XbarError::InvalidConfig(format!(
                "expected {} codes, got {}",
                rows * cols,
                codes.len()
            )));
        }
        let qmax = config.quant.weight_max();
        let n_slices = config.cells_per_weight();
        let mut pos = vec![vec![0u64; rows * cols]; n_slices];
        let mut neg = vec![vec![0u64; rows * cols]; n_slices];
        for (i, &code) in codes.iter().enumerate() {
            if code.abs() > qmax {
                return Err(XbarError::InvalidConfig(format!(
                    "weight code {code} exceeds magnitude limit {qmax}"
                )));
            }
            let magnitude = code.unsigned_abs();
            let slices = config.cell.slice(magnitude, n_slices);
            let target = if code >= 0 { &mut pos } else { &mut neg };
            for (s, &level) in slices.iter().enumerate() {
                target[s][i] = level;
            }
        }
        let packed = PackedTile::pack(&pos, &neg, rows, cols, config.cell.bits_per_cell);
        crate::obs::TILE_PACKS.inc();
        crate::obs::PACKED_PLANES.observe(packed.stored_planes() as u64);
        let activated_rows = compute_activated_rows(&packed, cols);
        Ok(Self {
            rows,
            cols,
            pos,
            neg,
            packed,
            activated_rows,
            config,
        })
    }

    /// Block extent in rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Block extent in columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The tile's configuration.
    pub fn config(&self) -> &XbarConfig {
        &self.config
    }

    /// Reconstructs the signed weight codes stored in the tile by a
    /// shift-accumulate scan over the stored slices (no per-element
    /// allocation).
    pub fn codes(&self) -> Vec<i64> {
        let mut out = vec![0i64; self.rows * self.cols];
        let cell_bits = self.config.cell.bits_per_cell;
        for (s, (pos, neg)) in self.pos.iter().zip(&self.neg).enumerate() {
            let shift = s as u32 * cell_bits;
            for ((v, &p), &n) in out.iter_mut().zip(pos).zip(neg) {
                *v += (p as i64 - n as i64) << shift;
            }
        }
        out
    }

    /// Worst-case activated rows over all columns: the paper's quantity
    /// that sizes the ADC. A row is activated for a column when the stored
    /// weight code there is non-zero. Computed from the packed planes —
    /// the OR of every stored plane's column mask, popcounted — at pack
    /// time and cached (mutation recomputes it).
    pub fn activated_rows(&self) -> usize {
        self.activated_rows
    }

    /// Direct integer reference MVM: `y_j = Σ_r x_r · w_{r,j}`, computed
    /// on the packed bit planes (exact: every input-bit × level-bit cross
    /// term accumulates as an integer).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InputLengthMismatch`] for wrong input length.
    pub fn matvec_ideal(&self, input: &[u64]) -> Result<Vec<i64>> {
        self.check_input(input)?;
        let in_bits = self.config.quant.input_bits;
        let cell_bits = self.config.cell.bits_per_cell;
        let planes = packed::pack_bit_planes(input, in_bits, self.packed.words_per_col());
        let mut y = vec![0i64; self.cols];
        let grain = tinyadc_par::default_grain(self.cols);
        tinyadc_par::for_each_chunk_mut(&mut y, grain, |chunk, y_cols| {
            for (jj, yv) in y_cols.iter_mut().enumerate() {
                let j = chunk * grain + jj;
                *yv = self.packed.column_ideal(j, &planes, in_bits, cell_bits);
            }
        });
        Ok(y)
    }

    /// Bit-serial crossbar MVM through the given ADC: inputs stream
    /// `dac_bits` per cycle, every polarity/slice column is digitised each
    /// cycle, and the digital results are recombined by shift-and-add.
    ///
    /// Runs on the packed popcount kernel (the private `packed` module), which feeds
    /// the ADC the same integer column sums as the reference loop
    /// ([`Tile::matvec_loop`]) and is therefore bitwise identical to it,
    /// ADC saturation included.
    ///
    /// With an ADC of at least the required resolution the result equals
    /// [`Tile::matvec_ideal`] exactly; with fewer bits the ADC saturates
    /// and the result degrades — the paper's core trade-off.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InputLengthMismatch`] for wrong input length
    /// or codes exceeding the input range.
    pub fn matvec(&self, input: &[u64], adc: &Adc) -> Result<Vec<i64>> {
        self.check_input(input)?;
        let dac = self.config.dac_bits;
        let cycles = self.config.cycles();
        let cell_bits = self.config.cell.bits_per_cell;
        let planes = packed::pack_bit_planes(input, cycles * dac, self.packed.words_per_col());
        // Columns are independent ADC channels; each thread digitises its
        // own span of columns against the shared read-only planes, so the
        // output is bitwise identical for every thread count.
        let mut y = vec![0i64; self.cols];
        let grain = tinyadc_par::default_grain(self.cols);
        let saturations = AtomicU64::new(0);
        let words_skipped = AtomicU64::new(0);
        tinyadc_par::for_each_chunk_mut(&mut y, grain, |chunk, y_cols| {
            let mut sats = 0u64;
            let mut skipped = 0u64;
            for (jj, yv) in y_cols.iter_mut().enumerate() {
                let j = chunk * grain + jj;
                let (acc, s) = self.packed.column_bit_serial(
                    j,
                    &planes,
                    dac,
                    cycles,
                    cell_bits,
                    adc,
                    &mut skipped,
                );
                *yv = acc;
                sats += s;
            }
            saturations.fetch_add(sats, Ordering::Relaxed);
            words_skipped.fetch_add(skipped, Ordering::Relaxed);
        });
        self.record_mvm_events(1, saturations.into_inner());
        crate::obs::PACKED_WORDS_SKIPPED.add(words_skipped.into_inner());
        Ok(y)
    }

    /// Bit-serial MVM for a batch of inputs sharing this tile.
    ///
    /// `inputs` holds `n_inputs` column vectors in im2col layout —
    /// element `(row r, input i)` at `inputs[r * n_inputs + i]` — so an
    /// unfolded activation matrix can be streamed without per-patch
    /// gathering. The output is input-major: `out[i * cols + j]`.
    ///
    /// Bitwise identical to calling [`Tile::matvec`] once per input; the
    /// input bit-plane packing is amortised across the whole batch and
    /// the batch is chunked over the flat (input × column) element grid
    /// (disjoint output spans, boundaries derived from the element count
    /// alone), so the result is thread-count-invariant and a single
    /// input still fans its columns over the pool.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InputLengthMismatch`] when `inputs` is not
    /// `rows × n_inputs` long, [`XbarError::InvalidConfig`] for codes
    /// exceeding the input range.
    pub fn matvec_batch(&self, inputs: &[u64], n_inputs: usize, adc: &Adc) -> Result<Vec<i64>> {
        let mut packed_inputs = PackedInputs::default();
        let mut y = Vec::new();
        self.matvec_batch_into(inputs, n_inputs, adc, &mut packed_inputs, &mut y)?;
        Ok(y)
    }

    /// Workspace-reusing variant of [`Tile::matvec_batch`]: packs the
    /// input bit planes (and their occupancy index) into `packed_inputs`
    /// and writes the input-major outputs into `y`, resizing both but
    /// reusing their capacity, so repeat calls at a fixed batch geometry
    /// perform no heap allocation. Results are bitwise identical to
    /// [`Tile::matvec_batch`].
    ///
    /// Callers mapping several tiles over the same input rows should pack
    /// once with [`PackedInputs::pack`] and run
    /// [`Tile::matvec_batch_prepacked_into`] per tile instead.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InputLengthMismatch`] when `inputs` is not
    /// `rows × n_inputs` long, [`XbarError::InvalidConfig`] for codes
    /// exceeding the input range.
    pub fn matvec_batch_into(
        &self,
        inputs: &[u64],
        n_inputs: usize,
        adc: &Adc,
        packed_inputs: &mut PackedInputs,
        y: &mut Vec<i64>,
    ) -> Result<()> {
        if n_inputs == 0 {
            y.clear();
            return Ok(());
        }
        if inputs.len() != self.rows * n_inputs {
            return Err(XbarError::InputLengthMismatch {
                expected: self.rows * n_inputs,
                actual: inputs.len(),
            });
        }
        let max = self.config.quant.input_max();
        if inputs.iter().any(|&x| x > max) {
            return Err(XbarError::InvalidConfig(format!(
                "input code exceeds {max}"
            )));
        }
        let n_planes = self.config.cycles() * self.config.dac_bits;
        packed_inputs.pack(inputs, n_inputs, n_planes, self.packed.words_per_col());
        self.matvec_batch_prepacked_into(packed_inputs, adc, y)
    }

    /// Bit-serial MVM over an already-packed input batch — the shared-pack
    /// entry point: callers that map several tiles over the same input
    /// rows (a mapped layer's row block) pack once and run every tile of
    /// the block against the same read-only [`PackedInputs`].
    ///
    /// Per input, the kernel is chosen at pack time from the occupancy
    /// index (see [`PackedKernel`](crate::PackedKernel)): all-zero inputs
    /// short-circuit to zero outputs, sparse inputs run the
    /// occupancy-indexed kernel, dense inputs the widened dense kernel.
    /// Every path feeds the ADC identical integer column sums, so the
    /// output, the saturation count, and all modeled hardware counters
    /// (charged per executed MVM regardless of software skips) are
    /// bitwise identical across kernels and thread
    /// counts; only the `xbar.packed.*_skipped` software counters and
    /// wall-clock time vary with the kernel choice — and those skip
    /// totals are data-derived, so they too are thread-count-invariant.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] when `packed_inputs` was
    /// packed for a different geometry than this tile expects (row count,
    /// words per column, or DAC plane count mismatch) — the guard that
    /// catches stale shared packs after a shape or DAC change.
    pub fn matvec_batch_prepacked_into(
        &self,
        packed_inputs: &PackedInputs,
        adc: &Adc,
        y: &mut Vec<i64>,
    ) -> Result<()> {
        let n_inputs = packed_inputs.n_inputs();
        if n_inputs == 0 {
            y.clear();
            return Ok(());
        }
        let dac = self.config.dac_bits;
        let cycles = self.config.cycles();
        let cell_bits = self.config.cell.bits_per_cell;
        let wpc = self.packed.words_per_col();
        let n_planes = cycles * dac;
        if packed_inputs.rows() != self.rows
            || packed_inputs.words_per_col() != wpc
            || packed_inputs.plane_count() != n_planes
        {
            return Err(XbarError::InvalidConfig(format!(
                "packed inputs ({} rows, {} planes, {} words/col) do not match tile \
                 ({} rows, {} planes, {} words/col): stale shared pack",
                packed_inputs.rows(),
                packed_inputs.plane_count(),
                packed_inputs.words_per_col(),
                self.rows,
                n_planes,
                wpc,
            )));
        }
        y.clear();
        y.resize(n_inputs * self.cols, 0);
        // Chunk over the flat (input × column) element grid: every output
        // element `f = i·cols + j` is one independent ADC channel read, so
        // a single input's columns already spread over the pool (the
        // compiled Linear step runs with `n_inputs == 1`) and chunk
        // boundaries may fall mid-input without affecting values. The
        // grain derives from the element count and the modeled per-column
        // popcount cost (polarities × weight planes × input planes ×
        // words) — shape quantities only, so boundaries stay reproducible
        // — and saturations/skip totals merge by commutative addition.
        let cols = self.cols;
        let col_cost = 2 * self.config.cells_per_weight() as u64 * u64::from(n_planes) * wpc as u64;
        let grain = tinyadc_par::grain_for_cost(n_inputs * cols, col_cost);
        let mode = packed::packed_kernel();
        let saturations = AtomicU64::new(0);
        let planes_skipped = AtomicU64::new(0);
        let words_skipped = AtomicU64::new(0);
        tinyadc_par::for_each_chunk_mut(y, grain, |chunk, y_span| {
            let mut sats = 0u64;
            let mut skips = packed::SkipStats::default();
            for (k, yv) in y_span.iter_mut().enumerate() {
                let f = chunk * grain + k;
                let (i, j) = (f / cols, f % cols);
                match packed_inputs.path(mode, i) {
                    KernelPath::Zero => {
                        // All input planes empty: every pre-ADC sum is 0
                        // and sample(0) == 0, so the output element is 0
                        // and no saturation can occur.
                        *yv = 0;
                        skips.input_planes += u64::from(n_planes);
                    }
                    KernelPath::Dense => {
                        let (acc, s) = self.packed.column_bit_serial(
                            j,
                            packed_inputs.input_planes(i),
                            dac,
                            cycles,
                            cell_bits,
                            adc,
                            &mut skips.words,
                        );
                        *yv = acc;
                        sats += s;
                    }
                    KernelPath::Indexed => {
                        let zero_planes = packed_inputs.zero_plane_count(i);
                        let (acc, s) = self.packed.column_bit_serial_indexed(
                            j,
                            packed_inputs.input_planes(i),
                            packed_inputs.input_occ(i),
                            n_planes - zero_planes,
                            dac,
                            cycles,
                            cell_bits,
                            adc,
                            &mut skips,
                        );
                        *yv = acc;
                        sats += s;
                        skips.input_planes += u64::from(zero_planes);
                    }
                }
            }
            saturations.fetch_add(sats, Ordering::Relaxed);
            planes_skipped.fetch_add(skips.input_planes, Ordering::Relaxed);
            words_skipped.fetch_add(skips.words, Ordering::Relaxed);
        });
        self.record_mvm_events(n_inputs as u64, saturations.into_inner());
        crate::obs::PACKED_INPUT_PLANES_SKIPPED.add(planes_skipped.into_inner());
        crate::obs::PACKED_WORDS_SKIPPED.add(words_skipped.into_inner());
        Ok(())
    }

    /// Non-ideal variant of [`Tile::matvec_batch_prepacked_into`]: every
    /// output element runs the noise-aware packed kernel
    /// ([`crate::packed::PackedTile::column_bit_serial_nonideal`]), which
    /// scales each pre-ADC column sum by the column-mean IR attenuation
    /// and adds Gaussian read noise before the ADC samples it.
    ///
    /// Determinism: the noise RNG is derived *per output element* from the
    /// context's stream seed (`mix(stream, i·cols + j)`), never consumed
    /// across elements, so chunk boundaries — and therefore thread counts
    /// — cannot change any value. There is no zero-input short-circuit:
    /// the ADC samples noise on all-zero columns too, exactly as the
    /// silicon would.
    ///
    /// With an identity context (no IR model, sigma 0) the output is
    /// bitwise identical to the clean entry point.
    ///
    /// # Errors
    ///
    /// Returns the same stale-shared-pack [`XbarError::InvalidConfig`] as
    /// the clean entry point.
    pub(crate) fn matvec_batch_prepacked_nonideal_into(
        &self,
        packed_inputs: &PackedInputs,
        adc: &Adc,
        ctx: &crate::noise::NoiseCtx,
        y: &mut Vec<i64>,
    ) -> Result<()> {
        let n_inputs = packed_inputs.n_inputs();
        if n_inputs == 0 {
            y.clear();
            return Ok(());
        }
        let dac = self.config.dac_bits;
        let cycles = self.config.cycles();
        let cell_bits = self.config.cell.bits_per_cell;
        let wpc = self.packed.words_per_col();
        let n_planes = cycles * dac;
        if packed_inputs.rows() != self.rows
            || packed_inputs.words_per_col() != wpc
            || packed_inputs.plane_count() != n_planes
        {
            return Err(XbarError::InvalidConfig(format!(
                "packed inputs ({} rows, {} planes, {} words/col) do not match tile \
                 ({} rows, {} planes, {} words/col): stale shared pack",
                packed_inputs.rows(),
                packed_inputs.plane_count(),
                packed_inputs.words_per_col(),
                self.rows,
                n_planes,
                wpc,
            )));
        }
        y.clear();
        y.resize(n_inputs * self.cols, 0);
        // Same flat (input × column) grid and shape-derived grain as the
        // clean path; saturation/draw totals merge by commutative addition.
        let cols = self.cols;
        let rows = self.rows;
        let col_cost = 2 * self.config.cells_per_weight() as u64 * u64::from(n_planes) * wpc as u64;
        let grain = tinyadc_par::grain_for_cost(n_inputs * cols, col_cost);
        let saturations = AtomicU64::new(0);
        let noise_draws = AtomicU64::new(0);
        let words_skipped = AtomicU64::new(0);
        tinyadc_par::for_each_chunk_mut(y, grain, |chunk, y_span| {
            let mut sats = 0u64;
            let mut draws = 0u64;
            let mut skipped = 0u64;
            for (k, yv) in y_span.iter_mut().enumerate() {
                let f = chunk * grain + k;
                let (i, j) = (f / cols, f % cols);
                let att = ctx.column_attenuation(j, rows, cols);
                let mut rng = SeededRng::new(crate::noise::mix(ctx.stream, f as u64));
                let (acc, s, d) = self.packed.column_bit_serial_nonideal(
                    j,
                    packed_inputs.input_planes(i),
                    dac,
                    cycles,
                    cell_bits,
                    adc,
                    att,
                    ctx.sigma,
                    &mut rng,
                    &mut skipped,
                );
                *yv = acc;
                sats += s;
                draws += d;
            }
            saturations.fetch_add(sats, Ordering::Relaxed);
            noise_draws.fetch_add(draws, Ordering::Relaxed);
            words_skipped.fetch_add(skipped, Ordering::Relaxed);
        });
        self.record_mvm_events(n_inputs as u64, saturations.into_inner());
        crate::obs::NOISE_MVMS.add(n_inputs as u64);
        crate::obs::NOISE_DRAWS.add(noise_draws.into_inner());
        crate::obs::PACKED_WORDS_SKIPPED.add(words_skipped.into_inner());
        Ok(())
    }

    /// The reference bit-serial MVM: the original column × cycle × slice
    /// × row loop over the stored cell levels. Kept as the equivalence
    /// oracle for the packed kernel (and for benchmarking it); production
    /// paths use [`Tile::matvec`].
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InputLengthMismatch`] for wrong input length
    /// or codes exceeding the input range.
    pub fn matvec_loop(&self, input: &[u64], adc: &Adc) -> Result<Vec<i64>> {
        self.check_input(input)?;
        let dac = self.config.dac_bits;
        let dac_mask = (1u64 << dac) - 1;
        let cycles = self.config.cycles();
        let cell_bits = self.config.cell.bits_per_cell;
        // Columns are independent ADC channels; each thread digitises its
        // own span of columns. The per-column shift-add runs over the same
        // (cycle, slice) sequence as the serial datapath, and the digital
        // accumulation is integer-exact, so parallel output is bitwise
        // identical for every thread count.
        let mut y = vec![0i64; self.cols];
        let grain = tinyadc_par::default_grain(self.cols);
        tinyadc_par::for_each_chunk_mut(&mut y, grain, |chunk, y_cols| {
            for (jj, yv) in y_cols.iter_mut().enumerate() {
                let j = chunk * grain + jj;
                let mut acc = 0i64;
                for cycle in 0..cycles {
                    let shift_in = cycle * dac;
                    for (s, (pos, neg)) in self.pos.iter().zip(&self.neg).enumerate() {
                        let shift = shift_in + s as u32 * cell_bits;
                        let mut pos_sum = 0u64;
                        let mut neg_sum = 0u64;
                        for r in 0..self.rows {
                            let bits = (input[r] >> shift_in) & dac_mask;
                            if bits == 0 {
                                continue;
                            }
                            pos_sum += bits * pos[r * self.cols + j];
                            neg_sum += bits * neg[r * self.cols + j];
                        }
                        let p = adc.sample(pos_sum) as i64;
                        let n = adc.sample(neg_sum) as i64;
                        acc += (p - n) << shift;
                    }
                }
                *yv = acc;
            }
        });
        Ok(y)
    }

    /// Analog-domain MVM: cell conductances carry the levels (with the
    /// device model's process variation), column currents are converted
    /// back to level units and digitised. With `variation = 0` this equals
    /// [`Tile::matvec`].
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InputLengthMismatch`] for wrong input length.
    pub fn matvec_analog(
        &self,
        input: &[u64],
        adc: &Adc,
        device: &DeviceModel,
        rng: &mut SeededRng,
    ) -> Result<Vec<i64>> {
        self.check_input(input)?;
        let dac = self.config.dac_bits;
        let dac_mask = (1u64 << dac) - 1;
        let cycles = self.config.cycles();
        let cell_bits = self.config.cell.bits_per_cell;
        let level_max = self.config.cell.level_max() as f64;
        let unit = (device.g_on - device.g_off) / level_max;
        // Pre-draw varied conductances per cell (one draw per cell, reused
        // across cycles — variation is static, not per-read noise).
        let vary = |levels: &[u64], rng: &mut SeededRng| -> Vec<f64> {
            levels
                .iter()
                .map(|&l| device.conductance_with_variation(l, &self.config.cell, rng))
                .collect()
        };
        // The conductance draw consumes the rng stream sequentially and must
        // stay serial; only the column loop below parallelises.
        let pos_g: Vec<Vec<f64>> = self.pos.iter().map(|s| vary(s, rng)).collect();
        let neg_g: Vec<Vec<f64>> = self.neg.iter().map(|s| vary(s, rng)).collect();

        // Per column, the float current sums accumulate over rows in the
        // same order as the serial loop, so parallelism over columns keeps
        // results bitwise identical.
        let mut y = vec![0i64; self.cols];
        let grain = tinyadc_par::default_grain(self.cols);
        tinyadc_par::for_each_chunk_mut(&mut y, grain, |chunk, y_cols| {
            for (jj, yv) in y_cols.iter_mut().enumerate() {
                let j = chunk * grain + jj;
                let mut acc = 0i64;
                for cycle in 0..cycles {
                    let shift_in = cycle * dac;
                    for s in 0..pos_g.len() {
                        let shift = shift_in + s as u32 * cell_bits;
                        let mut pos_i = 0.0f64;
                        let mut neg_i = 0.0f64;
                        let mut active = 0u64;
                        for r in 0..self.rows {
                            let bits = (input[r] >> shift_in) & dac_mask;
                            if bits == 0 {
                                continue;
                            }
                            active += bits;
                            pos_i += bits as f64 * pos_g[s][r * self.cols + j];
                            neg_i += bits as f64 * neg_g[s][r * self.cols + j];
                        }
                        // Remove the g_off pedestal contributed by active rows.
                        let pedestal = active as f64 * device.g_off;
                        let p = adc.sample_analog((pos_i - pedestal) / unit) as i64;
                        let n = adc.sample_analog((neg_i - pedestal) / unit) as i64;
                        acc += (p - n) << shift;
                    }
                }
                *yv = acc;
            }
        });
        Ok(y)
    }

    /// Total cells in the tile (both polarities, all slices).
    pub fn cell_count(&self) -> usize {
        2 * self.pos.len() * self.rows * self.cols
    }

    /// Number of bit slices per polarity.
    pub(crate) fn slice_count(&self) -> usize {
        self.pos.len()
    }

    /// Stored level of one cell; `polarity` 0 = positive, 1 = negative,
    /// `index` is the flat `row * cols + col` position.
    pub(crate) fn cell_level(&self, polarity: usize, slice: usize, index: usize) -> u64 {
        let target = if polarity == 0 { &self.pos } else { &self.neg };
        target[slice][index]
    }

    /// Bit planes the packed kernel actually stores (out of
    /// `2 · slices · bits_per_cell` possible): all-zero planes are
    /// dropped at pack time, so this shrinks with slice-level sparsity —
    /// the structure column-proportional pruning creates.
    pub fn packed_plane_count(&self) -> usize {
        self.packed.stored_planes()
    }

    /// Mutates the raw cell levels (`f` receives the positive and
    /// negative polarity slices, each `[slice][row * cols + col]`) and
    /// rebuilds the packed bit planes afterwards so the popcount kernels
    /// stay consistent. Used by fault injection.
    pub(crate) fn mutate_cells(&mut self, f: impl FnOnce(&mut Vec<Vec<u64>>, &mut Vec<Vec<u64>>)) {
        f(&mut self.pos, &mut self.neg);
        self.packed = PackedTile::pack(
            &self.pos,
            &self.neg,
            self.rows,
            self.cols,
            self.config.cell.bits_per_cell,
        );
        crate::obs::TILE_PACKS.inc();
        crate::obs::PACKED_PLANES.observe(self.packed.stored_planes() as u64);
        self.activated_rows = compute_activated_rows(&self.packed, self.cols);
    }

    /// Records the modeled hardware events of `n_mvms` executed MVMs plus
    /// the observed ADC saturations (already summed over the batch). Event
    /// counts follow [`crate::activity::tile_activity`] — they model what
    /// the silicon datapath performs, including the zero-sum samples the
    /// packed kernel software-skips — so the hw roll-up built from these
    /// counters matches the analytic activity model exactly.
    fn record_mvm_events(&self, n_mvms: u64, saturations: u64) {
        let a = crate::activity::tile_activity(self);
        crate::obs::MATVECS.add(n_mvms);
        crate::obs::ADC_CONVERSIONS.add(a.adc_conversions * n_mvms);
        crate::obs::DAC_EVENTS.add(a.dac_events * n_mvms);
        crate::obs::COLUMN_READS.add(a.column_reads * n_mvms);
        crate::obs::SHIFT_ADDS.add(a.shift_adds * n_mvms);
        crate::obs::ADC_SATURATIONS.add(saturations);
        crate::obs::ROWS_ACTIVATED.observe_n(self.activated_rows as u64, n_mvms);
    }

    fn check_input(&self, input: &[u64]) -> Result<()> {
        if input.len() != self.rows {
            return Err(XbarError::InputLengthMismatch {
                expected: self.rows,
                actual: input.len(),
            });
        }
        let max = self.config.quant.input_max();
        if input.iter().any(|&x| x > max) {
            return Err(XbarError::InvalidConfig(format!(
                "input code exceeds {max}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adc::{required_adc_bits_exact, required_adc_bits_paper};

    fn small_config() -> XbarConfig {
        XbarConfig {
            shape: CrossbarShape::new(8, 8).unwrap(),
            cell: CellConfig::default(),
            quant: QuantConfig {
                weight_bits: 5, // magnitude 4 bits -> 2 cells
                input_bits: 4,
            },
            dac_bits: 1,
        }
    }

    fn demo_codes() -> Vec<i64> {
        // 4x3 block with mixed signs and zeros.
        vec![
            3, -7, 0, //
            0, 15, -1, //
            -15, 0, 8, //
            2, 4, 0,
        ]
    }

    #[test]
    fn codes_round_trip_through_cells() {
        let tile = Tile::new(&demo_codes(), 4, 3, small_config()).unwrap();
        assert_eq!(tile.codes(), demo_codes());
    }

    #[test]
    fn activated_rows_counts_nonzeros_per_column() {
        let tile = Tile::new(&demo_codes(), 4, 3, small_config()).unwrap();
        // Column nonzeros: col0 = {3,-15,2} = 3, col1 = 3, col2 = 2.
        assert_eq!(tile.activated_rows(), 3);
    }

    #[test]
    fn matvec_with_sufficient_adc_is_exact() {
        let cfg = small_config();
        let tile = Tile::new(&demo_codes(), 4, 3, cfg).unwrap();
        let bits = required_adc_bits_paper(cfg.dac_bits, cfg.cell.bits_per_cell, 4);
        let adc = Adc::new(bits).unwrap();
        let input = vec![5u64, 0, 15, 9];
        assert_eq!(
            tile.matvec(&input, &adc).unwrap(),
            tile.matvec_ideal(&input).unwrap()
        );
    }

    #[test]
    fn matvec_with_reduced_adc_is_exact_after_pruning() {
        // Column-proportionally pruned block: at most 1 nonzero per column.
        let cfg = small_config();
        let codes = vec![
            0, -7, 0, //
            0, 0, 0, //
            -15, 0, 8, //
            0, 0, 0,
        ];
        let tile = Tile::new(&codes, 4, 3, cfg).unwrap();
        assert_eq!(tile.activated_rows(), 1);
        // 1 activated row, 1-bit DAC, 2-bit cells -> 2 bits suffice.
        let bits = required_adc_bits_exact(1, 2, 1);
        assert_eq!(bits, 2);
        let adc = Adc::new(bits).unwrap();
        for input in [vec![15u64, 15, 15, 15], vec![1, 2, 3, 4], vec![0, 0, 0, 0]] {
            assert_eq!(
                tile.matvec(&input, &adc).unwrap(),
                tile.matvec_ideal(&input).unwrap(),
                "input {input:?}"
            );
        }
    }

    #[test]
    fn undersized_adc_saturates_unpruned_block() {
        let cfg = small_config();
        // Dense column of maximal weights and inputs.
        let codes = vec![15i64; 8];
        let tile = Tile::new(&codes, 8, 1, cfg).unwrap();
        let input = vec![15u64; 8];
        let small = Adc::new(2).unwrap();
        let exact = tile.matvec_ideal(&input).unwrap();
        let lossy = tile.matvec(&input, &small).unwrap();
        assert!(lossy[0] < exact[0], "{lossy:?} vs {exact:?}");
    }

    #[test]
    fn multibit_dac_matches_ideal() {
        let cfg = XbarConfig {
            dac_bits: 2,
            ..small_config()
        };
        let tile = Tile::new(&demo_codes(), 4, 3, cfg).unwrap();
        let adc = Adc::new(required_adc_bits_paper(2, 2, 4)).unwrap();
        let input = vec![11u64, 3, 15, 6];
        assert_eq!(
            tile.matvec(&input, &adc).unwrap(),
            tile.matvec_ideal(&input).unwrap()
        );
    }

    #[test]
    fn analog_mode_without_variation_is_exact() {
        let cfg = small_config();
        let tile = Tile::new(&demo_codes(), 4, 3, cfg).unwrap();
        let adc = Adc::new(required_adc_bits_paper(1, 2, 4)).unwrap();
        let device = DeviceModel {
            variation: 0.0,
            ..DeviceModel::default()
        };
        let mut rng = SeededRng::new(1);
        let input = vec![7u64, 2, 13, 15];
        assert_eq!(
            tile.matvec_analog(&input, &adc, &device, &mut rng).unwrap(),
            tile.matvec_ideal(&input).unwrap()
        );
    }

    #[test]
    fn analog_variation_perturbs_but_tracks() {
        let cfg = small_config();
        let tile = Tile::new(&demo_codes(), 4, 3, cfg).unwrap();
        let adc = Adc::new(required_adc_bits_paper(1, 2, 4)).unwrap();
        let device = DeviceModel::default(); // 10% variation
        let mut rng = SeededRng::new(5);
        let input = vec![15u64, 15, 15, 15];
        let ideal = tile.matvec_ideal(&input).unwrap();
        let noisy = tile.matvec_analog(&input, &adc, &device, &mut rng).unwrap();
        for (a, b) in noisy.iter().zip(&ideal) {
            let denom = (b.abs() as f64).max(16.0);
            assert!(
                ((a - b).abs() as f64) / denom < 0.5,
                "noisy {a} too far from ideal {b}"
            );
        }
    }

    #[test]
    fn packed_matvec_matches_reference_loop() {
        let cfg = small_config();
        let tile = Tile::new(&demo_codes(), 4, 3, cfg).unwrap();
        let input = vec![5u64, 0, 15, 9];
        // Generous and deliberately starved ADCs: packed must track the
        // loop bit for bit in both regimes.
        for bits in [1, 2, 4, 8] {
            let adc = Adc::new(bits).unwrap();
            assert_eq!(
                tile.matvec(&input, &adc).unwrap(),
                tile.matvec_loop(&input, &adc).unwrap(),
                "adc {bits} bits"
            );
        }
    }

    #[test]
    fn matvec_batch_matches_per_input_matvec() {
        let cfg = small_config();
        let tile = Tile::new(&demo_codes(), 4, 3, cfg).unwrap();
        let adc = Adc::new(3).unwrap();
        let inputs = [
            vec![5u64, 0, 15, 9],
            vec![0u64, 0, 0, 0],
            vec![15u64, 15, 15, 15],
        ];
        // im2col layout: (row r, input i) at r * n_inputs + i.
        let n = inputs.len();
        let mut batch = vec![0u64; 4 * n];
        for (i, input) in inputs.iter().enumerate() {
            for (r, &x) in input.iter().enumerate() {
                batch[r * n + i] = x;
            }
        }
        let y = tile.matvec_batch(&batch, n, &adc).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(
                &y[i * 3..(i + 1) * 3],
                &tile.matvec(input, &adc).unwrap()[..],
                "input {i}"
            );
        }
        assert!(tile.matvec_batch(&[], 0, &adc).unwrap().is_empty());
        assert!(tile.matvec_batch(&batch[..7], n, &adc).is_err());
    }

    #[test]
    fn zero_plane_skipping_shrinks_pruned_tiles() {
        let cfg = small_config();
        let dense = Tile::new(&demo_codes(), 4, 3, cfg).unwrap();
        // Only small-magnitude weights: the high slice stores nothing.
        let low = Tile::new(&[1, -2, 0, 3, 0, -1, 2, 0, 1, 0, 3, -3], 4, 3, cfg).unwrap();
        assert!(low.packed_plane_count() < dense.packed_plane_count());
        let empty = Tile::new(&[0; 12], 4, 3, cfg).unwrap();
        assert_eq!(empty.packed_plane_count(), 0);
        assert_eq!(empty.activated_rows(), 0);
    }

    #[test]
    fn validation_rejects_bad_blocks() {
        let cfg = small_config();
        assert!(Tile::new(&[0; 72], 9, 8, cfg).is_err()); // too many rows
        assert!(Tile::new(&[0; 8], 4, 3, cfg).is_err()); // wrong length
        assert!(Tile::new(&[99], 1, 1, cfg).is_err()); // code out of range
        assert!(Tile::new(&[], 0, 1, cfg).is_err());
    }

    #[test]
    fn cycles_and_arrays_accounting() {
        let cfg = XbarConfig::paper_default();
        assert_eq!(cfg.cycles(), 8);
        assert_eq!(cfg.cells_per_weight(), 4); // 7 magnitude bits, 2-bit cells
        assert_eq!(cfg.arrays_per_block(), 8);
    }
}
