//! Layer → crossbar mapping (paper §III-C and Fig. 3).
//!
//! A prunable parameter is flattened to its 2-D crossbar matrix (columns =
//! filters; `tinyadc_prune::layout`), quantised once per layer, and tiled
//! into crossbar-sized blocks — ragged edge blocks get their own arrays,
//! exactly as the paper specifies.

use crate::adc::{required_adc_bits_exact, required_adc_bits_paper, Adc};
use crate::packed::PackedInputs;
use crate::quant::{quantize_input, quantize_weights, Quantized};
use crate::tile::{Tile, XbarConfig};
use crate::{Result, XbarError};
use tinyadc_nn::ParamKind;
use tinyadc_prune::layout;
use tinyadc_tensor::Tensor;

/// Reusable scratch for [`MappedLayer::matvec_codes_batch_into`]: the
/// shared packed input planes (with occupancy index) of the row block
/// currently executing, plus per-tile partial outputs. Buffers grow to
/// the largest batch seen and keep their capacity across calls.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Packed input bit planes + occupancy index of the row block
    /// currently executing — packed **once per row block** and shared by
    /// every column block's tile (they all read the same input rows).
    pub(crate) packed: PackedInputs,
    /// Input-major partial outputs of the tile currently executing.
    pub(crate) tile_y: Vec<i64>,
}

impl BatchScratch {
    /// Bytes currently held across the scratch buffers.
    pub fn bytes(&self) -> usize {
        self.packed.bytes() + self.tile_y.len() * std::mem::size_of::<i64>()
    }
}

/// A layer's weights mapped onto a grid of crossbar tiles.
///
/// # Example
///
/// ```
/// use tinyadc_nn::ParamKind;
/// use tinyadc_tensor::{Tensor, rng::SeededRng};
/// use tinyadc_xbar::mapping::MappedLayer;
/// use tinyadc_xbar::tile::XbarConfig;
///
/// # fn main() -> Result<(), tinyadc_xbar::XbarError> {
/// let mut rng = SeededRng::new(0);
/// let weights = Tensor::randn(&[128, 32, 3, 3], 0.5, &mut rng);
/// let mapped = MappedLayer::from_param(
///     &weights, ParamKind::ConvWeight, XbarConfig::paper_default())?;
/// // matrix [288, 128] tiles into 3x1 blocks of 128x128
/// assert_eq!(mapped.block_count(), 3);
/// assert_eq!(mapped.required_adc_bits(), 9); // dense: all 128 rows active
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MappedLayer {
    tiles: Vec<Tile>,
    row_blocks: usize,
    col_blocks: usize,
    matrix_rows: usize,
    matrix_cols: usize,
    weight_scale: f32,
    kind: ParamKind,
    param_dims: Vec<usize>,
    config: XbarConfig,
}

impl MappedLayer {
    /// Maps a parameter tensor (conv/linear weight) onto crossbars.
    ///
    /// # Errors
    ///
    /// Propagates layout errors for unsupported kinds and configuration
    /// errors from tiling.
    pub fn from_param(value: &Tensor, kind: ParamKind, config: XbarConfig) -> Result<Self> {
        config.validate()?;
        let matrix = layout::to_matrix(value, kind)?;
        let (rows, cols) = (matrix.dims()[0], matrix.dims()[1]);
        let q = quantize_weights(&matrix, &config.quant)?;
        let m = config.shape.rows();
        let n = config.shape.cols();
        let row_blocks = rows.div_ceil(m);
        let col_blocks = cols.div_ceil(n);
        let mut tiles = Vec::with_capacity(row_blocks * col_blocks);
        for rb in 0..row_blocks {
            let r0 = rb * m;
            let r1 = (r0 + m).min(rows);
            for cb in 0..col_blocks {
                let c0 = cb * n;
                let c1 = (c0 + n).min(cols);
                let mut block = Vec::with_capacity((r1 - r0) * (c1 - c0));
                for r in r0..r1 {
                    for c in c0..c1 {
                        block.push(q.codes[r * cols + c]);
                    }
                }
                tiles.push(Tile::new(&block, r1 - r0, c1 - c0, config)?);
            }
        }
        Ok(Self {
            tiles,
            row_blocks,
            col_blocks,
            matrix_rows: rows,
            matrix_cols: cols,
            weight_scale: q.scale,
            kind,
            param_dims: value.dims().to_vec(),
            config,
        })
    }

    /// Reassembles a mapped layer from snapshot-decoded parts: already
    /// rebuilt tiles plus the block-grid and matrix geometry. Used by the
    /// snapshot codec ([`crate::snapshot`]); [`Tile::new`] packing is a
    /// pure function of codes + config, so a layer rebuilt from persisted
    /// codes runs bitwise identical to the one that was saved.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] when the tile count disagrees
    /// with the block grid or the grid cannot cover the matrix extents.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        tiles: Vec<Tile>,
        row_blocks: usize,
        col_blocks: usize,
        matrix_rows: usize,
        matrix_cols: usize,
        weight_scale: f32,
        kind: ParamKind,
        param_dims: Vec<usize>,
        config: XbarConfig,
    ) -> Result<Self> {
        config.validate()?;
        if tiles.len() != row_blocks * col_blocks {
            return Err(XbarError::InvalidConfig(format!(
                "snapshot layer holds {} tiles for a {row_blocks}x{col_blocks} grid",
                tiles.len()
            )));
        }
        let (m, n) = (config.shape.rows(), config.shape.cols());
        if matrix_rows.div_ceil(m) != row_blocks || matrix_cols.div_ceil(n) != col_blocks {
            return Err(XbarError::InvalidConfig(format!(
                "snapshot block grid {row_blocks}x{col_blocks} cannot tile a \
                 {matrix_rows}x{matrix_cols} matrix on {m}x{n} crossbars"
            )));
        }
        Ok(Self {
            tiles,
            row_blocks,
            col_blocks,
            matrix_rows,
            matrix_cols,
            weight_scale,
            kind,
            param_dims,
            config,
        })
    }

    /// The mapping configuration.
    pub fn config(&self) -> &XbarConfig {
        &self.config
    }

    /// The kind of the mapped parameter (conv or linear weight).
    pub fn kind(&self) -> ParamKind {
        self.kind
    }

    /// The original parameter dims (e.g. `[f, c, kh, kw]` for a conv).
    pub fn param_dims(&self) -> &[usize] {
        &self.param_dims
    }

    /// The layer's weight quantisation scale.
    pub fn weight_scale(&self) -> f32 {
        self.weight_scale
    }

    /// Matrix extents `[rows, cols]` of the mapped layer.
    pub fn matrix_dims(&self) -> (usize, usize) {
        (self.matrix_rows, self.matrix_cols)
    }

    /// Number of logical crossbar blocks (weight-matrix tiles).
    pub fn block_count(&self) -> usize {
        self.tiles.len()
    }

    /// Block grid extents `(row_blocks, col_blocks)`; tile `t` covers
    /// matrix rows starting at `(t / col_blocks) * shape.rows()` and
    /// columns starting at `(t % col_blocks) * shape.cols()`.
    pub fn block_grid(&self) -> (usize, usize) {
        (self.row_blocks, self.col_blocks)
    }

    /// Number of physical arrays (blocks × differential pairs × slices).
    pub fn array_count(&self) -> usize {
        self.block_count() * self.config.arrays_per_block()
    }

    /// Immutable tile access.
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Mutable tile access (fault injection).
    pub fn tiles_mut(&mut self) -> &mut [Tile] {
        &mut self.tiles
    }

    /// Worst-case activated rows across every tile — the quantity that
    /// sizes the layer's ADCs.
    pub fn activated_rows(&self) -> usize {
        self.tiles
            .iter()
            .map(Tile::activated_rows)
            .max()
            .unwrap_or(0)
    }

    /// ADC resolution required by the paper's Eq. 1 for this layer as
    /// mapped (based on the worst-case activated rows).
    pub fn required_adc_bits(&self) -> u32 {
        let rows = self.activated_rows().max(1);
        required_adc_bits_paper(self.config.dac_bits, self.config.cell.bits_per_cell, rows)
    }

    /// Exact ADC resolution requirement for this layer as mapped.
    pub fn required_adc_bits_exact(&self) -> u32 {
        let rows = self.activated_rows().max(1);
        required_adc_bits_exact(self.config.dac_bits, self.config.cell.bits_per_cell, rows)
    }

    /// Crossbar MVM on integer input codes (length = matrix rows) through
    /// the given ADC; returns integer outputs (length = matrix cols),
    /// accumulating partial sums across row blocks digitally.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InputLengthMismatch`] for wrong input length.
    pub fn matvec_codes(&self, input: &[u64], adc: &Adc) -> Result<Vec<i64>> {
        self.run_matvec(input, |tile, slice| tile.matvec(slice, adc))
    }

    /// Ideal integer MVM (no ADC), for reference comparisons.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InputLengthMismatch`] for wrong input length.
    pub fn matvec_codes_ideal(&self, input: &[u64]) -> Result<Vec<i64>> {
        self.run_matvec(input, |tile, slice| tile.matvec_ideal(slice))
    }

    /// Batched crossbar MVM: `n_inputs` integer input vectors in im2col
    /// layout — element `(matrix row r, input i)` at
    /// `inputs[r * n_inputs + i]` — through the given ADC. Returns
    /// input-major outputs, `out[i * matrix_cols + j]`, with partial sums
    /// accumulated digitally across row blocks.
    ///
    /// Bitwise identical to calling [`MappedLayer::matvec_codes`] once
    /// per input; the batch's DAC bit planes are packed **once per row
    /// block** and shared by every column block's tile
    /// ([`Tile::matvec_batch_prepacked_into`]) instead of once per tile,
    /// and pool parallelism runs over the flat (input × column) grid of
    /// each tile — so even a batch of one fans its output columns out.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InputLengthMismatch`] when `inputs` is not
    /// `matrix_rows × n_inputs` long.
    pub fn matvec_codes_batch(
        &self,
        inputs: &[u64],
        n_inputs: usize,
        adc: &Adc,
    ) -> Result<Vec<i64>> {
        let mut scratch = BatchScratch::default();
        let mut out = Vec::new();
        self.matvec_codes_batch_into(inputs, n_inputs, adc, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Workspace-reusing variant of [`MappedLayer::matvec_codes_batch`]:
    /// the shared packed input planes of each row block and the per-tile
    /// partial outputs live in `scratch` and the accumulated input-major
    /// outputs in `out`; all buffers are resized but keep their capacity,
    /// so repeat calls at a fixed batch geometry perform no heap
    /// allocation. Results are bitwise identical to
    /// [`MappedLayer::matvec_codes_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InputLengthMismatch`] when `inputs` is not
    /// `matrix_rows × n_inputs` long, [`XbarError::InvalidConfig`] for
    /// codes exceeding the input range.
    pub fn matvec_codes_batch_into(
        &self,
        inputs: &[u64],
        n_inputs: usize,
        adc: &Adc,
        scratch: &mut BatchScratch,
        out: &mut Vec<i64>,
    ) -> Result<()> {
        if n_inputs == 0 {
            out.clear();
            return Ok(());
        }
        if inputs.len() != self.matrix_rows * n_inputs {
            return Err(XbarError::InputLengthMismatch {
                expected: self.matrix_rows * n_inputs,
                actual: inputs.len(),
            });
        }
        let max = self.config.quant.input_max();
        if inputs.iter().any(|&x| x > max) {
            return Err(XbarError::InvalidConfig(format!(
                "input code exceeds {max}"
            )));
        }
        let m = self.config.shape.rows();
        let n = self.config.shape.cols();
        let n_planes = self.config.cycles() * self.config.dac_bits;
        out.clear();
        out.resize(n_inputs * self.matrix_cols, 0);
        // Row-block-outer order: every tile of a row block consumes the
        // same input rows, so the batch's DAC bit planes (and their
        // occupancy index) are packed once per row block and shared
        // read-only across the block's column tiles. Tiles merge serially
        // in tile order: row blocks accumulate into the *same* output
        // columns, so fanning tiles out would race. The pool fan-out
        // instead happens inside `Tile::matvec_batch_prepacked_into`,
        // whose tasks are chunks of the flat (input × column) grid —
        // whole output columns each — and the digital merge here is
        // integer-exact, so tile order cannot change results.
        for rb in 0..self.row_blocks {
            let r0 = rb * m;
            let r1 = (r0 + m).min(self.matrix_rows);
            scratch.packed.pack(
                &inputs[r0 * n_inputs..r1 * n_inputs],
                n_inputs,
                n_planes,
                (r1 - r0).div_ceil(64),
            );
            for cb in 0..self.col_blocks {
                let tile = &self.tiles[rb * self.col_blocks + cb];
                let c0 = cb * n;
                tile.matvec_batch_prepacked_into(&scratch.packed, adc, &mut scratch.tile_y)?;
                for (i, y_row) in scratch.tile_y.chunks(tile.cols()).enumerate() {
                    let dst = &mut out[i * self.matrix_cols + c0..][..tile.cols()];
                    for (d, v) in dst.iter_mut().zip(y_row) {
                        *d += v;
                    }
                }
            }
        }
        Ok(())
    }

    /// Non-ideal variant of [`MappedLayer::matvec_codes_batch_into`]:
    /// identical row-block-outer shared-pack structure, but every tile
    /// runs the noise-aware kernel under a per-tile split of the given
    /// noise context (`ctx.with_salt(tile_index)`), so two tiles never
    /// share a noise stream and the digital merge stays integer-exact.
    /// Each tile's IR attenuation uses its own geometry (ragged edge
    /// blocks are shorter wires). With an identity context the result is
    /// bitwise identical to the clean entry point.
    ///
    /// # Errors
    ///
    /// Same contract as [`MappedLayer::matvec_codes_batch_into`].
    pub(crate) fn matvec_codes_batch_nonideal_into(
        &self,
        inputs: &[u64],
        n_inputs: usize,
        adc: &Adc,
        ctx: &crate::noise::NoiseCtx,
        scratch: &mut BatchScratch,
        out: &mut Vec<i64>,
    ) -> Result<()> {
        if n_inputs == 0 {
            out.clear();
            return Ok(());
        }
        if inputs.len() != self.matrix_rows * n_inputs {
            return Err(XbarError::InputLengthMismatch {
                expected: self.matrix_rows * n_inputs,
                actual: inputs.len(),
            });
        }
        let max = self.config.quant.input_max();
        if inputs.iter().any(|&x| x > max) {
            return Err(XbarError::InvalidConfig(format!(
                "input code exceeds {max}"
            )));
        }
        let m = self.config.shape.rows();
        let n = self.config.shape.cols();
        let n_planes = self.config.cycles() * self.config.dac_bits;
        out.clear();
        out.resize(n_inputs * self.matrix_cols, 0);
        for rb in 0..self.row_blocks {
            let r0 = rb * m;
            let r1 = (r0 + m).min(self.matrix_rows);
            scratch.packed.pack(
                &inputs[r0 * n_inputs..r1 * n_inputs],
                n_inputs,
                n_planes,
                (r1 - r0).div_ceil(64),
            );
            for cb in 0..self.col_blocks {
                let t = rb * self.col_blocks + cb;
                let tile = &self.tiles[t];
                let c0 = cb * n;
                let tile_ctx = ctx.with_salt(t as u64);
                tile.matvec_batch_prepacked_nonideal_into(
                    &scratch.packed,
                    adc,
                    &tile_ctx,
                    &mut scratch.tile_y,
                )?;
                for (i, y_row) in scratch.tile_y.chunks(tile.cols()).enumerate() {
                    let dst = &mut out[i * self.matrix_cols + c0..][..tile.cols()];
                    for (d, v) in dst.iter_mut().zip(y_row) {
                        *d += v;
                    }
                }
            }
        }
        Ok(())
    }

    fn run_matvec(
        &self,
        input: &[u64],
        f: impl Fn(&Tile, &[u64]) -> Result<Vec<i64>> + Sync,
    ) -> Result<Vec<i64>> {
        if input.len() != self.matrix_rows {
            return Err(XbarError::InputLengthMismatch {
                expected: self.matrix_rows,
                actual: input.len(),
            });
        }
        let m = self.config.shape.rows();
        let n = self.config.shape.cols();
        // Tiles run concurrently (they only read the shared input); partial
        // sums merge serially in tile order. The digital accumulation is
        // integer-exact, so the merge order cannot change results.
        let results = tinyadc_par::map(self.tiles.len(), |t| {
            let r0 = (t / self.col_blocks) * m;
            let r1 = (r0 + m).min(self.matrix_rows);
            f(&self.tiles[t], &input[r0..r1])
        });
        let mut out = vec![0i64; self.matrix_cols];
        for (t, result) in results.into_iter().enumerate() {
            let y = result?;
            let c0 = (t % self.col_blocks) * n;
            for (k, v) in y.iter().enumerate() {
                out[c0 + k] += v;
            }
        }
        Ok(out)
    }

    /// Real-valued forward: quantise a non-negative input vector, run the
    /// crossbar MVM through an ADC of `adc_bits` (or the layer's required
    /// resolution when `None`), and dequantise.
    ///
    /// # Errors
    ///
    /// Propagates quantisation and length errors.
    pub fn forward(&self, input: &Tensor, adc_bits: Option<u32>) -> Result<Tensor> {
        let q = quantize_input(input, &self.config.quant)?;
        let adc = Adc::new(adc_bits.unwrap_or_else(|| self.required_adc_bits()))?;
        let codes: Vec<u64> = q.codes.iter().map(|&c| c as u64).collect();
        let y = self.matvec_codes(&codes, &adc)?;
        let scale = self.weight_scale * q.scale;
        let data = y.iter().map(|&v| v as f32 * scale).collect();
        Ok(Tensor::from_vec(data, &[self.matrix_cols])?)
    }

    /// Reconstructs the (dequantised) weights currently stored in the
    /// cells, in the original parameter layout. After fault injection this
    /// returns the *faulted* weights.
    ///
    /// # Errors
    ///
    /// Propagates layout errors.
    pub fn unmap(&self) -> Result<Tensor> {
        let mut matrix = vec![0.0f32; self.matrix_rows * self.matrix_cols];
        let m = self.config.shape.rows();
        let n = self.config.shape.cols();
        for rb in 0..self.row_blocks {
            for cb in 0..self.col_blocks {
                let tile = &self.tiles[rb * self.col_blocks + cb];
                let codes = tile.codes();
                let (r0, c0) = (rb * m, cb * n);
                for r in 0..tile.rows() {
                    for c in 0..tile.cols() {
                        matrix[(r0 + r) * self.matrix_cols + c0 + c] =
                            codes[r * tile.cols() + c] as f32 * self.weight_scale;
                    }
                }
            }
        }
        let matrix = Tensor::from_vec(matrix, &[self.matrix_rows, self.matrix_cols])?;
        Ok(layout::from_matrix(&matrix, self.kind, &self.param_dims)?)
    }

    /// The quantised view of the layer's weights (matrix layout).
    pub fn quantized(&self) -> Quantized {
        let mut codes = vec![0i64; self.matrix_rows * self.matrix_cols];
        let m = self.config.shape.rows();
        let n = self.config.shape.cols();
        for rb in 0..self.row_blocks {
            for cb in 0..self.col_blocks {
                let tile = &self.tiles[rb * self.col_blocks + cb];
                let tcodes = tile.codes();
                let (r0, c0) = (rb * m, cb * n);
                for r in 0..tile.rows() {
                    for c in 0..tile.cols() {
                        codes[(r0 + r) * self.matrix_cols + c0 + c] = tcodes[r * tile.cols() + c];
                    }
                }
            }
        }
        Quantized {
            codes,
            scale: self.weight_scale,
            dims: vec![self.matrix_rows, self.matrix_cols],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyadc_prune::{CpConstraint, CrossbarShape};
    use tinyadc_tensor::rng::SeededRng;

    fn small_config() -> XbarConfig {
        XbarConfig {
            shape: CrossbarShape::new(8, 8).unwrap(),
            cell: crate::cell::CellConfig::default(),
            quant: crate::quant::QuantConfig {
                weight_bits: 6,
                input_bits: 4,
            },
            dac_bits: 1,
        }
    }

    #[test]
    fn block_count_includes_ragged_edges() {
        let mut rng = SeededRng::new(1);
        // Conv [10, 2, 3, 3] -> matrix [18, 10] -> blocks 3x2 on 8x8.
        let w = Tensor::randn(&[10, 2, 3, 3], 0.5, &mut rng);
        let mapped = MappedLayer::from_param(&w, ParamKind::ConvWeight, small_config()).unwrap();
        assert_eq!(mapped.matrix_dims(), (18, 10));
        assert_eq!(mapped.block_count(), 3 * 2);
        // 6 blocks x 2 polarities x ceil(5/2)=3 slices = 36 arrays.
        assert_eq!(mapped.array_count(), 36);
    }

    #[test]
    fn unmap_round_trips_quantised_weights() {
        let mut rng = SeededRng::new(2);
        let w = Tensor::randn(&[6, 3, 3, 3], 0.5, &mut rng);
        let cfg = small_config();
        let mapped = MappedLayer::from_param(&w, ParamKind::ConvWeight, cfg).unwrap();
        let back = mapped.unmap().unwrap();
        assert_eq!(back.dims(), w.dims());
        // Equal to the quantise->dequantise of the original.
        let matrix = tinyadc_prune::layout::to_matrix(&w, ParamKind::ConvWeight).unwrap();
        let q = quantize_weights(&matrix, &cfg.quant).unwrap();
        let deq = q.dequantize().unwrap();
        let back_m = tinyadc_prune::layout::to_matrix(&back, ParamKind::ConvWeight).unwrap();
        for (a, b) in back_m.as_slice().iter().zip(deq.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn layer_matvec_matches_ideal_with_required_adc() {
        let mut rng = SeededRng::new(3);
        let w = Tensor::randn(&[9, 17], 0.5, &mut rng); // linear [out=9, in=17]
        let mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, small_config()).unwrap();
        let adc = Adc::new(mapped.required_adc_bits()).unwrap();
        let input: Vec<u64> = (0..17).map(|i| (i % 16) as u64).collect();
        assert_eq!(
            mapped.matvec_codes(&input, &adc).unwrap(),
            mapped.matvec_codes_ideal(&input).unwrap()
        );
    }

    #[test]
    fn cp_pruned_layer_needs_fewer_bits_and_stays_exact() {
        let mut rng = SeededRng::new(4);
        let cfg = small_config();
        let cp = CpConstraint::new(cfg.shape, 2).unwrap();
        let w = Tensor::randn(&[16, 3, 3, 3], 0.5, &mut rng); // matrix [27, 16]
        let pruned = cp.project_param(&w, ParamKind::ConvWeight).unwrap();
        let dense_map = MappedLayer::from_param(&w, ParamKind::ConvWeight, cfg).unwrap();
        let cp_map = MappedLayer::from_param(&pruned, ParamKind::ConvWeight, cfg).unwrap();
        assert!(cp_map.activated_rows() <= 2);
        assert!(cp_map.required_adc_bits() < dense_map.required_adc_bits());
        // The reduced ADC is still lossless for the pruned layer.
        let adc = Adc::new(cp_map.required_adc_bits()).unwrap();
        let input: Vec<u64> = (0..27).map(|i| (15 - i % 16) as u64).collect();
        assert_eq!(
            cp_map.matvec_codes(&input, &adc).unwrap(),
            cp_map.matvec_codes_ideal(&input).unwrap()
        );
        // ...but would corrupt the dense layer.
        let dense_out = dense_map.matvec_codes(&input, &adc).unwrap();
        assert_ne!(dense_out, dense_map.matvec_codes_ideal(&input).unwrap());
    }

    #[test]
    fn forward_approximates_f32_matvec() {
        let mut rng = SeededRng::new(5);
        let w = Tensor::randn(&[7, 12], 0.3, &mut rng);
        let cfg = XbarConfig {
            quant: crate::quant::QuantConfig::default(), // 8/8 bits
            ..small_config()
        };
        let mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg).unwrap();
        let x = Tensor::uniform(&[12], 0.0, 1.0, &mut rng);
        let y_sim = mapped.forward(&x, None).unwrap();
        let y_ref = w.matvec(&x).unwrap();
        for (a, b) in y_sim.as_slice().iter().zip(y_ref.as_slice()) {
            assert!((a - b).abs() < 0.05 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn wrong_input_length_rejected() {
        let mut rng = SeededRng::new(6);
        let w = Tensor::randn(&[4, 4], 0.5, &mut rng);
        let mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, small_config()).unwrap();
        let adc = Adc::new(8).unwrap();
        assert!(matches!(
            mapped.matvec_codes(&[1, 2, 3], &adc),
            Err(XbarError::InputLengthMismatch { .. })
        ));
    }
}
