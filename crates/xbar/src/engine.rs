//! Network-level crossbar effects.
//!
//! Whole-network inference on the crossbar substrate is evaluated in the
//! *weight domain*: every prunable parameter is mapped to crossbars
//! (quantise → slice → tiles), optionally fault-injected, and the cell
//! contents are unmapped back into the network, which then runs its normal
//! forward pass. This is numerically equivalent to running the bit-serial
//! crossbar MVM end to end because the tile datapath is integer-exact when
//! the ADC is adequately sized — a property proven by the [`crate::tile`]
//! and [`crate::mapping`] tests — while being fast enough to evaluate
//! accuracy over whole test sets.

use crate::fault::{inject_faults, FaultModel, FaultReport};
use crate::mapping::MappedLayer;
use crate::tile::XbarConfig;
use crate::Result;
use tinyadc_nn::{Network, Param};
use tinyadc_tensor::rng::SeededRng;

/// Summary of applying crossbar effects to a network.
#[derive(Debug, Clone, Default)]
pub struct CrossbarEffects {
    /// Per-layer `(name, logical blocks, required ADC bits)`.
    pub layers: Vec<(String, usize, u32)>,
    /// Aggregate fault report (zero when no faults were injected).
    pub faults: FaultReport,
}

impl CrossbarEffects {
    /// Total logical crossbar blocks across mapped layers.
    pub fn total_blocks(&self) -> usize {
        self.layers.iter().map(|(_, b, _)| b).sum()
    }

    /// The worst (largest) per-layer ADC requirement.
    pub fn max_adc_bits(&self) -> u32 {
        self.layers.iter().map(|&(_, _, b)| b).max().unwrap_or(0)
    }
}

/// Maps every prunable parameter of `net` onto crossbars, optionally
/// injects stuck-at faults, and writes the (quantised, possibly faulted)
/// weights back. `skip` lists parameter names to leave untouched (the
/// paper's first layer, typically).
///
/// # Errors
///
/// Propagates mapping errors.
pub fn apply_crossbar_effects(
    net: &mut Network,
    config: XbarConfig,
    faults: Option<&FaultModel>,
    skip: &[String],
    rng: &mut SeededRng,
) -> Result<CrossbarEffects> {
    let mut effects = CrossbarEffects::default();
    let mut failure = None;
    net.visit_params(&mut |p: &mut Param| {
        if failure.is_some() || !p.kind.is_prunable() || skip.iter().any(|s| s == &p.name) {
            return;
        }
        let step = (|| -> Result<()> {
            let mut mapped = MappedLayer::from_param(&p.value, p.kind, config)?;
            if let Some(model) = faults {
                effects
                    .faults
                    .merge(&inject_faults(&mut mapped, model, rng));
            }
            effects.layers.push((
                p.name.clone(),
                mapped.block_count(),
                mapped.required_adc_bits(),
            ));
            p.value = mapped.unmap()?;
            Ok(())
        })();
        if let Err(e) = step {
            failure = Some(e);
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(effects),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinyadc_nn::layers::{Conv2d, GlobalAvgPool, Linear, Sequential};
    use tinyadc_prune::CrossbarShape;
    use tinyadc_tensor::Tensor;

    fn cfg() -> XbarConfig {
        XbarConfig {
            shape: CrossbarShape::new(8, 8).unwrap(),
            ..XbarConfig::paper_default()
        }
    }

    fn net(rng: &mut SeededRng) -> Network {
        let stack = Sequential::new("n")
            .with(Conv2d::new("conv", 2, 4, 3, 1, 1, true, rng))
            .with(GlobalAvgPool::new("gap"))
            .with(Linear::new("fc", 4, 4, true, rng));
        Network::new("n", stack, vec![2, 4, 4], 4)
    }

    #[test]
    fn quantisation_only_changes_weights_slightly() {
        let mut rng = SeededRng::new(1);
        let mut n = net(&mut rng);
        let before = n.snapshot();
        let effects = apply_crossbar_effects(&mut n, cfg(), None, &[], &mut rng).unwrap();
        assert_eq!(effects.layers.len(), 2);
        assert_eq!(effects.faults.total_faults(), 0);
        let after = n.snapshot();
        for ((name, b), (_, a)) in before.iter().zip(&after) {
            if name.ends_with("weight") {
                let err = b.sub(a).unwrap().abs_max();
                assert!(err < b.abs_max() * 0.02 + 1e-6, "{name}: err {err}");
            } else {
                assert_eq!(b, a, "{name} (bias) must be untouched");
            }
        }
    }

    #[test]
    fn skip_list_is_respected() {
        let mut rng = SeededRng::new(2);
        let mut n = net(&mut rng);
        let effects =
            apply_crossbar_effects(&mut n, cfg(), None, &["conv.weight".into()], &mut rng).unwrap();
        assert_eq!(effects.layers.len(), 1);
        assert_eq!(effects.layers[0].0, "fc.weight");
    }

    #[test]
    fn faults_are_counted() {
        let mut rng = SeededRng::new(3);
        let mut n = net(&mut rng);
        let model = FaultModel::from_overall_rate(0.2).unwrap();
        let effects = apply_crossbar_effects(&mut n, cfg(), Some(&model), &[], &mut rng).unwrap();
        assert!(effects.faults.total_faults() > 0);
        assert!(effects.faults.cells > 0);
    }

    #[test]
    fn effects_are_deterministic_for_a_fixed_seed() {
        let run = || {
            let mut rng = SeededRng::new(11);
            let mut n = net(&mut rng);
            let model = FaultModel::from_overall_rate(0.1).unwrap();
            let mut fault_rng = SeededRng::new(42);
            let effects =
                apply_crossbar_effects(&mut n, cfg(), Some(&model), &[], &mut fault_rng).unwrap();
            (n.snapshot(), effects.faults)
        };
        let (snap_a, faults_a) = run();
        let (snap_b, faults_b) = run();
        assert_eq!(faults_a, faults_b);
        assert_eq!(snap_a, snap_b);
    }

    #[test]
    fn forward_still_runs_after_effects() {
        let mut rng = SeededRng::new(4);
        let mut n = net(&mut rng);
        apply_crossbar_effects(&mut n, cfg(), None, &[], &mut rng).unwrap();
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, &mut rng);
        let y = n.forward(&x, false).unwrap();
        assert_eq!(y.dims(), &[2, 4]);
    }
}
