//! ReRAM stuck-at fault model (paper §IV-E, failure model of paper ref. 26).
//!
//! Cells fail independently: **SA0** freezes a cell at level 0 (high
//! resistance), **SA1** at the maximum level. Following the March-test
//! characterisation the paper cites, SA0 faults dominate; the default
//! split assigns ~83 % of stuck-at faults to SA0.
//!
//! The paper's observation reproduced here: a column-proportionally pruned
//! model stores mostly *intentional zeros*, and an SA0 fault on a zero
//! cell is harmless — so CP-pruned models degrade more slowly with fault
//! rate than densely-stored baselines.
//!
//! Faults are modelled as a device property: a [`LayerFaultMap`] records
//! which cells are stuck (the outcome a March test would report), sampled
//! deterministically from a [`FaultModel`] and a seed, independent of the
//! weights programmed later. Applying the map to a [`MappedLayer`] forces
//! the stuck levels into the cells; repair strategies ([`crate::repair`])
//! consume the same map to work around the faults before they bite.

use crate::mapping::MappedLayer;
use crate::tile::Tile;
use crate::{Result, XbarError};
use tinyadc_tensor::rng::SeededRng;

/// Stuck-at fault configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability that any given cell is stuck at level 0.
    pub sa0_rate: f64,
    /// Probability that any given cell is stuck at the maximum level.
    pub sa1_rate: f64,
}

impl FaultModel {
    /// Builds a model from an *overall* stuck-at rate using the default
    /// SA0-dominant split (83 % SA0 / 17 % SA1, after the paper's ref. 26).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] for rates outside `[0, 1]`.
    pub fn from_overall_rate(rate: f64) -> Result<Self> {
        Self::new(rate * 0.83, rate * 0.17)
    }

    /// Builds a model from explicit SA0/SA1 rates.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] when either rate is outside
    /// `[0, 1]` or they sum above 1.
    pub fn new(sa0_rate: f64, sa1_rate: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&sa0_rate)
            || !(0.0..=1.0).contains(&sa1_rate)
            || sa0_rate + sa1_rate > 1.0
        {
            return Err(XbarError::InvalidConfig(format!(
                "fault rates sa0={sa0_rate} sa1={sa1_rate} invalid"
            )));
        }
        Ok(Self { sa0_rate, sa1_rate })
    }

    /// Overall stuck-at rate.
    pub fn overall_rate(&self) -> f64 {
        self.sa0_rate + self.sa1_rate
    }
}

/// Statistics from one injection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Total cells examined.
    pub cells: usize,
    /// Cells stuck at 0.
    pub sa0: usize,
    /// Cells stuck at the maximum level.
    pub sa1: usize,
    /// SA0 faults that landed on already-zero cells (harmless).
    pub sa0_harmless: usize,
}

impl FaultReport {
    /// Total faults injected.
    pub fn total_faults(&self) -> usize {
        self.sa0 + self.sa1
    }

    /// Accumulates another report into this one (per-tile and per-layer
    /// reports roll up by field-wise addition).
    pub fn merge(&mut self, other: &Self) {
        self.cells += other.cells;
        self.sa0 += other.sa0;
        self.sa1 += other.sa1;
        self.sa0_harmless += other.sa0_harmless;
    }
}

/// The level a faulty cell is frozen at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StuckAt {
    /// Stuck at level 0 (high resistance; SA0).
    Zero,
    /// Stuck at the maximum level (low resistance; SA1).
    Max,
}

/// One faulty cell within a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellFault {
    /// Polarity array the cell belongs to: 0 = positive, 1 = negative.
    pub polarity: usize,
    /// Bit-slice index within the polarity.
    pub slice: usize,
    /// Flat cell position `row * cols + col` within the tile block.
    pub index: usize,
    /// The level the cell is frozen at.
    pub stuck: StuckAt,
}

impl CellFault {
    /// Tile-local column of the fault.
    pub fn column(&self, cols: usize) -> usize {
        self.index % cols
    }

    /// Tile-local row of the fault.
    pub fn row(&self, cols: usize) -> usize {
        self.index / cols
    }
}

/// March-test-style fault map of one tile: the stuck cells a device test
/// would report, independent of the weights programmed into them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileFaultMap {
    rows: usize,
    cols: usize,
    faults: Vec<CellFault>,
}

impl TileFaultMap {
    /// Builds a map from an explicit fault list (March-test import, tests).
    pub fn from_faults(rows: usize, cols: usize, faults: Vec<CellFault>) -> Self {
        Self { rows, cols, faults }
    }

    /// Samples a fault map for `tile`'s geometry. Cells fail independently;
    /// the scan order is polarity → slice → flat cell index with one f64
    /// roll per cell, so the map is deterministic for a given rng state
    /// and resolves rates far below `f32` precision.
    pub fn sample(tile: &Tile, model: &FaultModel, rng: &mut SeededRng) -> Self {
        let cells = tile.rows() * tile.cols();
        let mut faults = Vec::new();
        for polarity in 0..2 {
            for slice in 0..tile.slice_count() {
                for index in 0..cells {
                    let roll = rng.sample_uniform_f64(0.0, 1.0);
                    let stuck = if roll < model.sa0_rate {
                        StuckAt::Zero
                    } else if roll < model.sa0_rate + model.sa1_rate {
                        StuckAt::Max
                    } else {
                        continue;
                    };
                    faults.push(CellFault {
                        polarity,
                        slice,
                        index,
                        stuck,
                    });
                }
            }
        }
        Self {
            rows: tile.rows(),
            cols: tile.cols(),
            faults,
        }
    }

    /// Tile extent in rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Tile extent in columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The recorded faults, in scan order.
    pub fn faults(&self) -> &[CellFault] {
        &self.faults
    }

    /// Number of faulty cells.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when the tile has no faulty cells.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Tile-local columns containing at least one fault, ascending.
    pub fn faulty_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.faults.iter().map(|f| f.column(self.cols)).collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Forces the stuck levels into `tile`, skipping faults `keep` rejects
    /// (spare-column repair drops a remapped column's faults entirely —
    /// the spare hardware is pristine). Packed planes rebuild afterwards.
    pub(crate) fn apply_filtered(
        &self,
        tile: &mut Tile,
        keep: &dyn Fn(&CellFault) -> bool,
    ) -> FaultReport {
        debug_assert_eq!((tile.rows(), tile.cols()), (self.rows, self.cols));
        let level_max = tile.config().cell.level_max();
        let mut report = FaultReport {
            cells: tile.cell_count(),
            ..FaultReport::default()
        };
        if !self.faults.iter().any(keep) {
            return report;
        }
        tile.mutate_cells(|pos, neg| {
            for fault in &self.faults {
                if !keep(fault) {
                    continue;
                }
                let target = if fault.polarity == 0 {
                    &mut *pos
                } else {
                    &mut *neg
                };
                let cell = &mut target[fault.slice][fault.index];
                match fault.stuck {
                    StuckAt::Zero => {
                        report.sa0 += 1;
                        if *cell == 0 {
                            report.sa0_harmless += 1;
                        }
                        *cell = 0;
                    }
                    StuckAt::Max => {
                        report.sa1 += 1;
                        *cell = level_max;
                    }
                }
            }
        });
        report
    }
}

/// Fault maps for every tile of a mapped layer, in tile order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerFaultMap {
    tiles: Vec<TileFaultMap>,
}

impl LayerFaultMap {
    /// Builds a layer map from per-tile maps, in the layer's tile order.
    pub fn from_tiles(tiles: Vec<TileFaultMap>) -> Self {
        Self { tiles }
    }

    /// Samples a fault map for every tile of `layer`, in tile order.
    pub fn sample(layer: &MappedLayer, model: &FaultModel, rng: &mut SeededRng) -> Self {
        Self {
            tiles: layer
                .tiles()
                .iter()
                .map(|t| TileFaultMap::sample(t, model, rng))
                .collect(),
        }
    }

    /// Per-tile maps, in the layer's tile order.
    pub fn tiles(&self) -> &[TileFaultMap] {
        &self.tiles
    }

    /// Total faulty cells across all tiles.
    pub fn total_faults(&self) -> usize {
        self.tiles.iter().map(TileFaultMap::len).sum()
    }

    /// Forces every recorded fault into `layer`'s cells.
    ///
    /// # Panics
    ///
    /// Panics when the map was sampled from a layer with a different tile
    /// grid.
    pub fn apply(&self, layer: &mut MappedLayer) -> FaultReport {
        assert_eq!(
            self.tiles.len(),
            layer.tiles().len(),
            "fault map / layer tile count mismatch"
        );
        let mut report = FaultReport::default();
        for (map, tile) in self.tiles.iter().zip(layer.tiles_mut()) {
            report.merge(&map.apply_filtered(tile, &|_| true));
        }
        crate::obs::FAULTS_INJECTED.add(report.total_faults() as u64);
        crate::obs::FAULTS_SA0_HARMLESS.add(report.sa0_harmless as u64);
        report
    }
}

/// Injects stuck-at faults into every cell of a mapped layer, in place:
/// samples a [`LayerFaultMap`] and applies it. Deterministic given the
/// RNG seed.
pub fn inject_faults(
    layer: &mut MappedLayer,
    model: &FaultModel,
    rng: &mut SeededRng,
) -> FaultReport {
    LayerFaultMap::sample(layer, model, rng).apply(layer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::XbarConfig;
    use tinyadc_nn::ParamKind;
    use tinyadc_prune::{CpConstraint, CrossbarShape};
    use tinyadc_tensor::Tensor;

    fn cfg() -> XbarConfig {
        XbarConfig {
            shape: CrossbarShape::new(8, 8).unwrap(),
            ..XbarConfig::paper_default()
        }
    }

    #[test]
    fn model_validation() {
        assert!(FaultModel::new(0.5, 0.6).is_err());
        assert!(FaultModel::new(-0.1, 0.0).is_err());
        let m = FaultModel::from_overall_rate(0.10).unwrap();
        assert!((m.overall_rate() - 0.10).abs() < 1e-12);
        assert!(m.sa0_rate > m.sa1_rate);
    }

    #[test]
    fn zero_rate_changes_nothing() {
        let mut rng = SeededRng::new(1);
        let w = Tensor::randn(&[8, 8], 0.5, &mut rng);
        let mut mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
        let before = mapped.unmap().unwrap();
        let model = FaultModel::new(0.0, 0.0).unwrap();
        let report = inject_faults(&mut mapped, &model, &mut rng);
        assert_eq!(report.total_faults(), 0);
        assert_eq!(mapped.unmap().unwrap(), before);
    }

    #[test]
    fn fault_rate_tracks_request() {
        let mut rng = SeededRng::new(2);
        let w = Tensor::randn(&[64, 64], 0.5, &mut rng);
        let mut mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
        let model = FaultModel::from_overall_rate(0.10).unwrap();
        let report = inject_faults(&mut mapped, &model, &mut rng);
        let rate = report.total_faults() as f64 / report.cells as f64;
        assert!((rate - 0.10).abs() < 0.01, "rate {rate}");
        assert!(report.sa0 > report.sa1);
    }

    #[test]
    fn sa0_on_pruned_cells_is_harmless() {
        // Fully CP-pruned layer (1 nonzero per 8-row column) has ≥ 7/8 of
        // weight cells zero; most SA0 faults land harmlessly.
        let mut rng = SeededRng::new(3);
        let w = Tensor::randn(&[32, 32], 0.5, &mut rng);
        let cp = CpConstraint::new(CrossbarShape::new(8, 8).unwrap(), 1).unwrap();
        let pruned = cp.project_param(&w, ParamKind::LinearWeight).unwrap();
        let mut mapped = MappedLayer::from_param(&pruned, ParamKind::LinearWeight, cfg()).unwrap();
        let model = FaultModel::new(0.2, 0.0).unwrap();
        let report = inject_faults(&mut mapped, &model, &mut rng);
        let harmless_fraction = report.sa0_harmless as f64 / report.sa0 as f64;
        assert!(
            harmless_fraction > 0.8,
            "harmless fraction {harmless_fraction}"
        );
    }

    #[test]
    fn sa1_perturbs_weights() {
        let mut rng = SeededRng::new(4);
        let w = Tensor::zeros(&[8, 8]);
        let mut mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
        let model = FaultModel::new(0.0, 0.5).unwrap();
        inject_faults(&mut mapped, &model, &mut rng);
        // Weight scale of the all-zero tensor is 1.0; SA1 cells now carry
        // nonzero levels, visible after unmapping.
        let faulted = mapped.unmap().unwrap();
        assert!(faulted.count_nonzero() > 0);
    }

    #[test]
    fn sampled_map_matches_direct_injection() {
        // inject_faults is sample+apply; a map sampled from the same rng
        // state must reproduce its effect exactly.
        let mut rng = SeededRng::new(21);
        let w = Tensor::randn(&[16, 16], 0.5, &mut rng);
        let model = FaultModel::from_overall_rate(0.1).unwrap();
        let mut a = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
        let mut b = a.clone();
        let mut rng_a = SeededRng::new(77);
        let mut rng_b = SeededRng::new(77);
        let report_a = inject_faults(&mut a, &model, &mut rng_a);
        let map = LayerFaultMap::sample(&b, &model, &mut rng_b);
        let report_b = map.apply(&mut b);
        assert_eq!(report_a, report_b);
        assert_eq!(map.total_faults(), report_b.total_faults());
        assert_eq!(a.unmap().unwrap(), b.unmap().unwrap());
    }

    #[test]
    fn map_is_independent_of_programmed_weights() {
        // The fault map is a device property: sampling against different
        // weight contents (same geometry, same rng) yields the same map.
        let mut rng = SeededRng::new(22);
        let w1 = Tensor::randn(&[16, 16], 0.5, &mut rng);
        let w2 = Tensor::zeros(&[16, 16]);
        let m1 = MappedLayer::from_param(&w1, ParamKind::LinearWeight, cfg()).unwrap();
        let m2 = MappedLayer::from_param(&w2, ParamKind::LinearWeight, cfg()).unwrap();
        let model = FaultModel::from_overall_rate(0.1).unwrap();
        let map1 = LayerFaultMap::sample(&m1, &model, &mut SeededRng::new(5));
        let map2 = LayerFaultMap::sample(&m2, &model, &mut SeededRng::new(5));
        assert_eq!(map1, map2);
    }

    #[test]
    fn faulty_columns_are_sorted_and_deduped() {
        let mut rng = SeededRng::new(23);
        let w = Tensor::randn(&[8, 8], 0.5, &mut rng);
        let mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
        let model = FaultModel::from_overall_rate(0.3).unwrap();
        let map = LayerFaultMap::sample(&mapped, &model, &mut rng);
        for tile in map.tiles() {
            let cols = tile.faulty_columns();
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "{cols:?}");
            assert!(cols.iter().all(|&c| c < tile.cols()));
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let run = |seed: u64| {
            let mut rng = SeededRng::new(seed);
            let w = Tensor::randn(&[16, 16], 0.5, &mut rng);
            let mut mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
            let model = FaultModel::from_overall_rate(0.05).unwrap();
            inject_faults(&mut mapped, &model, &mut rng);
            mapped.unmap().unwrap()
        };
        assert_eq!(run(9), run(9));
    }
}
