//! ReRAM stuck-at fault model (paper §IV-E, failure model of paper ref. 26).
//!
//! Cells fail independently: **SA0** freezes a cell at level 0 (high
//! resistance), **SA1** at the maximum level. Following the March-test
//! characterisation the paper cites, SA0 faults dominate; the default
//! split assigns ~83 % of stuck-at faults to SA0.
//!
//! The paper's observation reproduced here: a column-proportionally pruned
//! model stores mostly *intentional zeros*, and an SA0 fault on a zero
//! cell is harmless — so CP-pruned models degrade more slowly with fault
//! rate than densely-stored baselines.

use crate::mapping::MappedLayer;
use crate::{Result, XbarError};
use tinyadc_tensor::rng::SeededRng;

/// Stuck-at fault configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability that any given cell is stuck at level 0.
    pub sa0_rate: f64,
    /// Probability that any given cell is stuck at the maximum level.
    pub sa1_rate: f64,
}

impl FaultModel {
    /// Builds a model from an *overall* stuck-at rate using the default
    /// SA0-dominant split (83 % SA0 / 17 % SA1, after the paper's ref. 26).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] for rates outside `[0, 1]`.
    pub fn from_overall_rate(rate: f64) -> Result<Self> {
        Self::new(rate * 0.83, rate * 0.17)
    }

    /// Builds a model from explicit SA0/SA1 rates.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] when either rate is outside
    /// `[0, 1]` or they sum above 1.
    pub fn new(sa0_rate: f64, sa1_rate: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&sa0_rate)
            || !(0.0..=1.0).contains(&sa1_rate)
            || sa0_rate + sa1_rate > 1.0
        {
            return Err(XbarError::InvalidConfig(format!(
                "fault rates sa0={sa0_rate} sa1={sa1_rate} invalid"
            )));
        }
        Ok(Self { sa0_rate, sa1_rate })
    }

    /// Overall stuck-at rate.
    pub fn overall_rate(&self) -> f64 {
        self.sa0_rate + self.sa1_rate
    }
}

/// Statistics from one injection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Total cells examined.
    pub cells: usize,
    /// Cells stuck at 0.
    pub sa0: usize,
    /// Cells stuck at the maximum level.
    pub sa1: usize,
    /// SA0 faults that landed on already-zero cells (harmless).
    pub sa0_harmless: usize,
}

impl FaultReport {
    /// Total faults injected.
    pub fn total_faults(&self) -> usize {
        self.sa0 + self.sa1
    }
}

/// Injects stuck-at faults into every cell of a mapped layer, in place.
/// Deterministic given the RNG seed.
pub fn inject_faults(
    layer: &mut MappedLayer,
    model: &FaultModel,
    rng: &mut SeededRng,
) -> FaultReport {
    let mut report = FaultReport::default();
    let level_max = layer.config().cell.level_max();
    let sa0 = model.sa0_rate;
    let sa1 = model.sa1_rate;
    for tile in layer.tiles_mut() {
        tile.mutate_cells(|pos, neg| {
            for polarity in [pos, neg] {
                for slice in polarity.iter_mut() {
                    for level in slice.iter_mut() {
                        report.cells += 1;
                        let roll: f64 = rng.sample_uniform(0.0, 1.0) as f64;
                        if roll < sa0 {
                            report.sa0 += 1;
                            if *level == 0 {
                                report.sa0_harmless += 1;
                            }
                            *level = 0;
                        } else if roll < sa0 + sa1 {
                            report.sa1 += 1;
                            *level = level_max;
                        }
                    }
                }
            }
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::XbarConfig;
    use tinyadc_nn::ParamKind;
    use tinyadc_prune::{CpConstraint, CrossbarShape};
    use tinyadc_tensor::Tensor;

    fn cfg() -> XbarConfig {
        XbarConfig {
            shape: CrossbarShape::new(8, 8).unwrap(),
            ..XbarConfig::paper_default()
        }
    }

    #[test]
    fn model_validation() {
        assert!(FaultModel::new(0.5, 0.6).is_err());
        assert!(FaultModel::new(-0.1, 0.0).is_err());
        let m = FaultModel::from_overall_rate(0.10).unwrap();
        assert!((m.overall_rate() - 0.10).abs() < 1e-12);
        assert!(m.sa0_rate > m.sa1_rate);
    }

    #[test]
    fn zero_rate_changes_nothing() {
        let mut rng = SeededRng::new(1);
        let w = Tensor::randn(&[8, 8], 0.5, &mut rng);
        let mut mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
        let before = mapped.unmap().unwrap();
        let model = FaultModel::new(0.0, 0.0).unwrap();
        let report = inject_faults(&mut mapped, &model, &mut rng);
        assert_eq!(report.total_faults(), 0);
        assert_eq!(mapped.unmap().unwrap(), before);
    }

    #[test]
    fn fault_rate_tracks_request() {
        let mut rng = SeededRng::new(2);
        let w = Tensor::randn(&[64, 64], 0.5, &mut rng);
        let mut mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
        let model = FaultModel::from_overall_rate(0.10).unwrap();
        let report = inject_faults(&mut mapped, &model, &mut rng);
        let rate = report.total_faults() as f64 / report.cells as f64;
        assert!((rate - 0.10).abs() < 0.01, "rate {rate}");
        assert!(report.sa0 > report.sa1);
    }

    #[test]
    fn sa0_on_pruned_cells_is_harmless() {
        // Fully CP-pruned layer (1 nonzero per 8-row column) has ≥ 7/8 of
        // weight cells zero; most SA0 faults land harmlessly.
        let mut rng = SeededRng::new(3);
        let w = Tensor::randn(&[32, 32], 0.5, &mut rng);
        let cp = CpConstraint::new(CrossbarShape::new(8, 8).unwrap(), 1).unwrap();
        let pruned = cp.project_param(&w, ParamKind::LinearWeight).unwrap();
        let mut mapped = MappedLayer::from_param(&pruned, ParamKind::LinearWeight, cfg()).unwrap();
        let model = FaultModel::new(0.2, 0.0).unwrap();
        let report = inject_faults(&mut mapped, &model, &mut rng);
        let harmless_fraction = report.sa0_harmless as f64 / report.sa0 as f64;
        assert!(
            harmless_fraction > 0.8,
            "harmless fraction {harmless_fraction}"
        );
    }

    #[test]
    fn sa1_perturbs_weights() {
        let mut rng = SeededRng::new(4);
        let w = Tensor::zeros(&[8, 8]);
        let mut mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
        let model = FaultModel::new(0.0, 0.5).unwrap();
        inject_faults(&mut mapped, &model, &mut rng);
        // Weight scale of the all-zero tensor is 1.0; SA1 cells now carry
        // nonzero levels, visible after unmapping.
        let faulted = mapped.unmap().unwrap();
        assert!(faulted.count_nonzero() > 0);
    }

    #[test]
    fn injection_is_deterministic() {
        let run = |seed: u64| {
            let mut rng = SeededRng::new(seed);
            let w = Tensor::randn(&[16, 16], 0.5, &mut rng);
            let mut mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg()).unwrap();
            let model = FaultModel::from_overall_rate(0.05).unwrap();
            inject_faults(&mut mapped, &model, &mut rng);
            mapped.unmap().unwrap()
        };
        assert_eq!(run(9), run(9));
    }
}
