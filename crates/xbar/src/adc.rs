//! ADC resolution rules.
//!
//! Two ways to size the ADC for a crossbar column:
//!
//! * [`required_adc_bits_paper`] — the paper's Eq. 1:
//!   `bits = v + w + ⌈log2 r⌉`, minus one when `v == 1` or `w == 1`.
//! * [`required_adc_bits_exact`] — from the worst-case column sum
//!   `r · (2^w − 1) · (2^v − 1)`: the smallest `b` with
//!   `2^b − 1 ≥ max_sum`.
//!
//! The two agree whenever `r` is a power of two (proved by a test over the
//! full operating range); Eq. 1 is conservative otherwise.
//!
//! Note on the paper's "8-bit" baseline: with 128 activated rows, a 1-bit
//! DAC and 2-bit cells, Eq. 1 requires **9** bits, and all of the paper's
//! "ADC bits reduction" figures are consistent with a 9-bit baseline
//! (e.g. 64× CP → 3 bits → “−6 bits”). The prose mentions ISAAC's deployed
//! 8-bit ADC, which relies on ISAAC's output encoding trick; this crate
//! follows Eq. 1 so the reduction arithmetic reproduces the paper exactly.

use crate::{Result, XbarError};

/// The paper's Eq. 1 with `log = ⌈log2⌉`.
///
/// `v` = DAC (input) bits per cycle, `w` = bits per ReRAM cell, `rows` =
/// activated rows per column. The result is clamped to at least 1 bit.
///
/// # Panics
///
/// Panics if any argument is zero (a configuration bug, not a runtime
/// condition).
pub fn required_adc_bits_paper(v: u32, w: u32, rows: usize) -> u32 {
    assert!(v > 0 && w > 0 && rows > 0, "v, w, rows must be positive");
    let log_r = ceil_log2(rows);
    let raw = v + w + log_r;
    let bits = if v > 1 && w > 1 { raw } else { raw - 1 };
    bits.max(1)
}

/// Exact requirement from the worst-case column sum: the smallest `b`
/// such that `2^b − 1 ≥ rows · (2^w − 1) · (2^v − 1)`.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn required_adc_bits_exact(v: u32, w: u32, rows: usize) -> u32 {
    assert!(v > 0 && w > 0 && rows > 0, "v, w, rows must be positive");
    let max_sum = rows as u128 * ((1u128 << w) - 1) * ((1u128 << v) - 1);
    let mut bits = 1u32;
    while ((1u128 << bits) - 1) < max_sum {
        bits += 1;
    }
    bits
}

/// `⌈log2 n⌉` for `n ≥ 1` (0 for `n == 1`).
pub fn ceil_log2(n: usize) -> u32 {
    assert!(n > 0, "log2 of zero");
    (usize::BITS - (n - 1).leading_zeros()).min(usize::BITS) * u32::from(n > 1)
}

/// An ideal ADC of fixed resolution digitising non-negative column sums.
///
/// Values representable without error are `0 ..= 2^bits − 1`; larger sums
/// saturate — which is exactly the "computational inaccuracy" an
/// under-provisioned ADC introduces and column proportional pruning
/// removes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Adc {
    bits: u32,
}

impl Adc {
    /// Creates an ADC with the given resolution.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidConfig`] for zero or absurd (> 32)
    /// resolutions.
    pub fn new(bits: u32) -> Result<Self> {
        if bits == 0 || bits > 32 {
            return Err(XbarError::InvalidConfig(format!(
                "ADC resolution {bits} out of range 1..=32"
            )));
        }
        Ok(Self { bits })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest exactly representable value.
    pub fn full_scale(&self) -> u64 {
        (1u64 << self.bits) - 1
    }

    /// Digitises an integer column sum: exact up to full scale, saturating
    /// above it.
    pub fn sample(&self, column_sum: u64) -> u64 {
        column_sum.min(self.full_scale())
    }

    /// Digitises an analog (real-valued) column reading by rounding to the
    /// nearest code, saturating at full scale.
    pub fn sample_analog(&self, reading: f64) -> u64 {
        let code = reading.round().max(0.0) as u64;
        code.min(self.full_scale())
    }

    /// `true` when `column_sum` digitises without error.
    pub fn is_lossless_for(&self, column_sum: u64) -> bool {
        column_sum <= self.full_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(128), 7);
    }

    #[test]
    fn paper_example_8_rows() {
        // Paper §II-B: 8 activated rows, 1-bit DAC, 2-bit MLC -> 5 bits.
        assert_eq!(required_adc_bits_paper(1, 2, 8), 5);
    }

    #[test]
    fn paper_table1_reductions() {
        // Baseline: 128 rows, 1-bit DAC, 2-bit MLC -> 9 bits.
        let base = required_adc_bits_paper(1, 2, 128);
        assert_eq!(base, 9);
        // CP rates from Table I: rate -> remaining rows -> reduction.
        for (rate, expected_reduction) in
            [(2usize, 1u32), (4, 2), (8, 3), (16, 4), (32, 5), (64, 6)]
        {
            let l = 128 / rate;
            let bits = required_adc_bits_paper(1, 2, l);
            assert_eq!(base - bits, expected_reduction, "rate {rate}x");
        }
    }

    #[test]
    fn exact_matches_paper_for_power_of_two_rows() {
        for v in 1..=3 {
            for w in 1..=3 {
                for exp in 0..=8 {
                    let rows = 1usize << exp;
                    let exact = required_adc_bits_exact(v, w, rows);
                    let paper = required_adc_bits_paper(v, w, rows);
                    assert_eq!(exact, paper, "v={v} w={w} rows={rows}");
                }
            }
        }
    }

    #[test]
    fn paper_rule_is_conservative_for_ragged_rows() {
        for v in 1..=3 {
            for w in 1..=3 {
                for rows in 1..=200 {
                    let exact = required_adc_bits_exact(v, w, rows);
                    let paper = required_adc_bits_paper(v, w, rows);
                    assert!(exact <= paper, "v={v} w={w} rows={rows}");
                }
            }
        }
    }

    #[test]
    fn adc_samples_exactly_up_to_full_scale() {
        let adc = Adc::new(3).unwrap();
        assert_eq!(adc.full_scale(), 7);
        for s in 0..=7u64 {
            assert_eq!(adc.sample(s), s);
            assert!(adc.is_lossless_for(s));
        }
        assert_eq!(adc.sample(8), 7);
        assert!(!adc.is_lossless_for(8));
    }

    #[test]
    fn analog_sampling_rounds() {
        let adc = Adc::new(4).unwrap();
        assert_eq!(adc.sample_analog(3.4), 3);
        assert_eq!(adc.sample_analog(3.6), 4);
        assert_eq!(adc.sample_analog(-1.0), 0);
        assert_eq!(adc.sample_analog(99.0), 15);
    }

    #[test]
    fn invalid_resolutions_rejected() {
        assert!(Adc::new(0).is_err());
        assert!(Adc::new(33).is_err());
    }
}
