//! Property-based tests for the crossbar simulator.

use proptest::prelude::*;
use tinyadc_nn::ParamKind;
use tinyadc_prune::CrossbarShape;
use tinyadc_tensor::rng::SeededRng;
use tinyadc_tensor::Tensor;
use tinyadc_xbar::adc::{required_adc_bits_exact, Adc};
use tinyadc_xbar::cell::CellConfig;
use tinyadc_xbar::mapping::MappedLayer;
use tinyadc_xbar::quant::{quantize_weights, QuantConfig};
use tinyadc_xbar::tile::{Tile, XbarConfig};

fn small_config(rows: usize, cols: usize) -> XbarConfig {
    XbarConfig {
        shape: CrossbarShape::new(rows, cols).expect("valid"),
        quant: QuantConfig {
            weight_bits: 5,
            input_bits: 4,
        },
        ..XbarConfig::paper_default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn slicing_round_trips_any_magnitude(
        value in 0u64..1024,
        bits_per_cell in 1u32..=4,
    ) {
        let cfg = CellConfig { bits_per_cell };
        let n_cells = cfg.cells_per_weight(10);
        let slices = cfg.slice(value, n_cells);
        prop_assert!(slices.iter().all(|&s| s <= cfg.level_max()));
        prop_assert_eq!(cfg.unslice(&slices), value);
    }

    #[test]
    fn tile_codes_round_trip(
        rows in 1usize..8,
        cols in 1usize..8,
        seed in any::<u64>(),
    ) {
        let cfg = small_config(8, 8);
        let qmax = cfg.quant.weight_max();
        let mut rng = SeededRng::new(seed);
        let codes: Vec<i64> = (0..rows * cols)
            .map(|_| (rng.sample_index((2 * qmax as usize) + 1) as i64) - qmax)
            .collect();
        let tile = Tile::new(&codes, rows, cols, cfg).unwrap();
        prop_assert_eq!(tile.codes(), codes);
    }

    #[test]
    fn exact_adc_is_always_sufficient(
        rows in 1usize..8,
        cols in 1usize..8,
        seed in any::<u64>(),
    ) {
        // An ADC sized by the exact bound is lossless for ANY tile whose
        // activated rows match, for any valid input.
        let cfg = small_config(8, 8);
        let qmax = cfg.quant.weight_max();
        let mut rng = SeededRng::new(seed);
        let codes: Vec<i64> = (0..rows * cols)
            .map(|_| (rng.sample_index((2 * qmax as usize) + 1) as i64) - qmax)
            .collect();
        let tile = Tile::new(&codes, rows, cols, cfg).unwrap();
        let active = tile.activated_rows().max(1);
        let bits = required_adc_bits_exact(cfg.dac_bits, cfg.cell.bits_per_cell, active);
        let adc = Adc::new(bits).unwrap();
        let input: Vec<u64> = (0..rows)
            .map(|_| rng.sample_index(16) as u64)
            .collect();
        prop_assert_eq!(
            tile.matvec(&input, &adc).unwrap(),
            tile.matvec_ideal(&input).unwrap()
        );
    }

    #[test]
    fn mapping_preserves_quantised_values(
        f in 1usize..10,
        c in 1usize..4,
        seed in any::<u64>(),
    ) {
        let cfg = small_config(8, 4);
        let mut rng = SeededRng::new(seed);
        let w = Tensor::randn(&[f, c, 3, 3], 1.0, &mut rng);
        let mapped = MappedLayer::from_param(&w, ParamKind::ConvWeight, cfg).unwrap();
        let back = mapped.unmap().unwrap();
        // unmap == quantise->dequantise of the original (via matrix layout).
        let matrix = tinyadc_prune::layout::to_matrix(&w, ParamKind::ConvWeight).unwrap();
        let q = quantize_weights(&matrix, &cfg.quant).unwrap();
        let expect_matrix = q.dequantize().unwrap();
        let back_matrix = tinyadc_prune::layout::to_matrix(&back, ParamKind::ConvWeight).unwrap();
        for (a, b) in back_matrix.as_slice().iter().zip(expect_matrix.as_slice()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn layer_mvm_linearity(
        inp in 1usize..20,
        out in 1usize..10,
        seed in any::<u64>(),
    ) {
        // ideal MVM is linear: M(a) + M(b) == M(a + b) when a + b stays
        // within the input range.
        let cfg = small_config(8, 8);
        let mut rng = SeededRng::new(seed);
        let w = Tensor::randn(&[out, inp], 1.0, &mut rng);
        let mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg).unwrap();
        let a: Vec<u64> = (0..inp).map(|_| rng.sample_index(8) as u64).collect();
        let b: Vec<u64> = (0..inp).map(|_| rng.sample_index(7) as u64).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let ya = mapped.matvec_codes_ideal(&a).unwrap();
        let yb = mapped.matvec_codes_ideal(&b).unwrap();
        let ysum = mapped.matvec_codes_ideal(&sum).unwrap();
        for ((x, y), z) in ya.iter().zip(&yb).zip(&ysum) {
            prop_assert_eq!(x + y, *z);
        }
    }
}
