//! Randomized property tests for the crossbar simulator, driven by the
//! in-tree [`SeededRng`] (fixed seeds, deterministic, offline).

use tinyadc_nn::ParamKind;
use tinyadc_prune::CrossbarShape;
use tinyadc_tensor::rng::SeededRng;
use tinyadc_tensor::Tensor;
use tinyadc_xbar::adc::{required_adc_bits_exact, Adc};
use tinyadc_xbar::cell::CellConfig;
use tinyadc_xbar::mapping::MappedLayer;
use tinyadc_xbar::quant::{quantize_weights, QuantConfig};
use tinyadc_xbar::tile::{Tile, XbarConfig};

const CASES: u64 = 48;

fn small_config(rows: usize, cols: usize) -> XbarConfig {
    XbarConfig {
        shape: CrossbarShape::new(rows, cols).expect("valid"),
        quant: QuantConfig {
            weight_bits: 5,
            input_bits: 4,
        },
        ..XbarConfig::paper_default()
    }
}

#[test]
fn slicing_round_trips_any_magnitude() {
    for seed in 0..CASES {
        let mut rng = SeededRng::new(seed);
        let value = rng.sample_index(1024) as u64;
        let bits_per_cell = 1 + rng.sample_index(4) as u32;
        let cfg = CellConfig { bits_per_cell };
        let n_cells = cfg.cells_per_weight(10);
        let slices = cfg.slice(value, n_cells);
        assert!(slices.iter().all(|&s| s <= cfg.level_max()));
        assert_eq!(cfg.unslice(&slices), value);
    }
}

#[test]
fn tile_codes_round_trip() {
    for seed in 0..CASES {
        let mut rng = SeededRng::new(seed);
        let rows = 1 + rng.sample_index(7);
        let cols = 1 + rng.sample_index(7);
        let cfg = small_config(8, 8);
        let qmax = cfg.quant.weight_max();
        let codes: Vec<i64> = (0..rows * cols)
            .map(|_| (rng.sample_index((2 * qmax as usize) + 1) as i64) - qmax)
            .collect();
        let tile = Tile::new(&codes, rows, cols, cfg).unwrap();
        assert_eq!(tile.codes(), codes);
    }
}

#[test]
fn exact_adc_is_always_sufficient() {
    // An ADC sized by the exact bound is lossless for ANY tile whose
    // activated rows match, for any valid input.
    for seed in 0..CASES {
        let mut rng = SeededRng::new(seed);
        let rows = 1 + rng.sample_index(7);
        let cols = 1 + rng.sample_index(7);
        let cfg = small_config(8, 8);
        let qmax = cfg.quant.weight_max();
        let codes: Vec<i64> = (0..rows * cols)
            .map(|_| (rng.sample_index((2 * qmax as usize) + 1) as i64) - qmax)
            .collect();
        let tile = Tile::new(&codes, rows, cols, cfg).unwrap();
        let active = tile.activated_rows().max(1);
        let bits = required_adc_bits_exact(cfg.dac_bits, cfg.cell.bits_per_cell, active);
        let adc = Adc::new(bits).unwrap();
        let input: Vec<u64> = (0..rows).map(|_| rng.sample_index(16) as u64).collect();
        assert_eq!(
            tile.matvec(&input, &adc).unwrap(),
            tile.matvec_ideal(&input).unwrap()
        );
    }
}

#[test]
fn mapping_preserves_quantised_values() {
    for seed in 0..CASES {
        let mut rng = SeededRng::new(seed);
        let f = 1 + rng.sample_index(9);
        let c = 1 + rng.sample_index(3);
        let cfg = small_config(8, 4);
        let w = Tensor::randn(&[f, c, 3, 3], 1.0, &mut rng);
        let mapped = MappedLayer::from_param(&w, ParamKind::ConvWeight, cfg).unwrap();
        let back = mapped.unmap().unwrap();
        // unmap == quantise->dequantise of the original (via matrix layout).
        let matrix = tinyadc_prune::layout::to_matrix(&w, ParamKind::ConvWeight).unwrap();
        let q = quantize_weights(&matrix, &cfg.quant).unwrap();
        let expect_matrix = q.dequantize().unwrap();
        let back_matrix = tinyadc_prune::layout::to_matrix(&back, ParamKind::ConvWeight).unwrap();
        for (a, b) in back_matrix.as_slice().iter().zip(expect_matrix.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}

#[test]
fn layer_mvm_linearity() {
    // ideal MVM is linear: M(a) + M(b) == M(a + b) when a + b stays
    // within the input range.
    for seed in 0..CASES {
        let mut rng = SeededRng::new(seed);
        let inp = 1 + rng.sample_index(19);
        let out = 1 + rng.sample_index(9);
        let cfg = small_config(8, 8);
        let w = Tensor::randn(&[out, inp], 1.0, &mut rng);
        let mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg).unwrap();
        let a: Vec<u64> = (0..inp).map(|_| rng.sample_index(8) as u64).collect();
        let b: Vec<u64> = (0..inp).map(|_| rng.sample_index(7) as u64).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let ya = mapped.matvec_codes_ideal(&a).unwrap();
        let yb = mapped.matvec_codes_ideal(&b).unwrap();
        let ysum = mapped.matvec_codes_ideal(&sum).unwrap();
        for ((x, y), z) in ya.iter().zip(&yb).zip(&ysum) {
            assert_eq!(x + y, *z);
        }
    }
}
