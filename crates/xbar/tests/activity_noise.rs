//! Integration tests for the activity accounting and analog-noise models.

use tinyadc_nn::ParamKind;
use tinyadc_prune::{CpConstraint, CrossbarShape};
use tinyadc_tensor::rng::SeededRng;
use tinyadc_tensor::Tensor;
use tinyadc_xbar::activity::{layer_activity, scaled_activity};
use tinyadc_xbar::adc::{required_adc_bits_paper, Adc};
use tinyadc_xbar::mapping::MappedLayer;
use tinyadc_xbar::noise::{matvec_with_ir_drop, IrDropModel, ReadNoise};
use tinyadc_xbar::tile::XbarConfig;

fn config(rows: usize, cols: usize) -> XbarConfig {
    XbarConfig {
        shape: CrossbarShape::new(rows, cols).expect("valid"),
        ..XbarConfig::paper_default()
    }
}

#[test]
fn activity_counts_are_independent_of_weight_sparsity() {
    // The conversion count depends only on geometry — the reason the
    // paper's energy saving comes from cheaper (not fewer) conversions.
    let mut rng = SeededRng::new(91);
    let cfg = config(16, 8);
    let w = Tensor::randn(&[16, 32], 0.5, &mut rng);
    let dense = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg).expect("map");
    let cp = CpConstraint::new(cfg.shape, 2).expect("constraint");
    let pruned_w = cp
        .project_param(&w, ParamKind::LinearWeight)
        .expect("projection");
    let pruned = MappedLayer::from_param(&pruned_w, ParamKind::LinearWeight, cfg).expect("map");
    assert_eq!(layer_activity(&dense), layer_activity(&pruned));
}

#[test]
fn activity_scales_linearly_with_mvm_count() {
    let mut rng = SeededRng::new(92);
    let cfg = config(8, 8);
    let w = Tensor::randn(&[8, 8], 0.5, &mut rng);
    let mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg).expect("map");
    let one = layer_activity(&mapped);
    let many = scaled_activity(one, 256); // e.g. a 16x16 conv output plane
    assert_eq!(many.adc_conversions, one.adc_conversions * 256);
    assert_eq!(many.dac_events, one.dac_events * 256);
}

#[test]
fn structured_pruning_reduces_activity_via_block_count() {
    // Unlike CP, removing whole crossbar blocks cuts conversions.
    let mut rng = SeededRng::new(93);
    let cfg = config(16, 8);
    let full = Tensor::randn(&[16, 32], 0.5, &mut rng);
    let mapped_full = MappedLayer::from_param(&full, ParamKind::LinearWeight, cfg).expect("map");
    // Repacked survivor after removing 8 of 16 filters.
    let half = Tensor::randn(&[8, 32], 0.5, &mut rng);
    let mapped_half = MappedLayer::from_param(&half, ParamKind::LinearWeight, cfg).expect("map");
    let a_full = layer_activity(&mapped_full);
    let a_half = layer_activity(&mapped_half);
    assert!(a_half.adc_conversions < a_full.adc_conversions);
}

#[test]
fn ir_drop_and_read_noise_compose() {
    let mut rng = SeededRng::new(94);
    let cfg = config(16, 4);
    let w = Tensor::randn(&[4, 16], 0.5, &mut rng);
    let mapped = MappedLayer::from_param(&w, ParamKind::LinearWeight, cfg).expect("map");
    let tile = &mapped.tiles()[0];
    let adc = Adc::new(required_adc_bits_paper(1, 2, 16)).expect("bits");
    let input: Vec<u64> = (0..16).map(|i| 100 + i as u64).collect();
    let ideal = tile.matvec_ideal(&input).expect("ideal");

    // Zero-noise, zero-resistance path is exact.
    let clean = matvec_with_ir_drop(
        tile,
        &input,
        &adc,
        &IrDropModel::with_wire_resistance(0.0).expect("model"),
        None,
        &mut rng,
    )
    .expect("mvm");
    assert_eq!(clean, ideal);

    // Both non-idealities together still produce finite, bounded outputs.
    let sigma = 1.0f64;
    let noisy = matvec_with_ir_drop(
        tile,
        &input,
        &adc,
        &IrDropModel::with_wire_resistance(10.0).expect("model"),
        Some(&ReadNoise {
            sigma_levels: sigma,
        }),
        &mut rng,
    )
    .expect("mvm");
    // Read noise of `sigma` levels enters both polarities of every
    // (cycle, slice) conversion and is shifted like the data, so the total
    // perturbation has variance 2 sigma^2 Σ 4^shift; bound at 8 of those
    // standard deviations (IR drop at 10 Ω adds far less than that).
    let mut variance = 0.0f64;
    for cycle in 0..cfg.cycles() {
        for s in 0..cfg.cells_per_weight() as u32 {
            let shift = cycle * cfg.dac_bits + s * cfg.cell.bits_per_cell;
            variance += 2.0 * (sigma * (1u64 << shift) as f64).powi(2);
        }
    }
    let bound = 8.0 * variance.sqrt();
    for (a, b) in noisy.iter().zip(&ideal) {
        assert!(
            ((a - b).abs() as f64) < bound,
            "noisy {a} diverged from ideal {b} beyond {bound}"
        );
    }
    assert_ne!(noisy, ideal, "read noise should perturb the output");
}

#[test]
fn deeper_quantisation_means_more_cycles_and_conversions() {
    let mut rng = SeededRng::new(95);
    let w = Tensor::randn(&[8, 8], 0.5, &mut rng);
    let narrow = XbarConfig {
        shape: CrossbarShape::new(8, 8).expect("valid"),
        quant: tinyadc_xbar::quant::QuantConfig {
            weight_bits: 8,
            input_bits: 4,
        },
        ..XbarConfig::paper_default()
    };
    let wide = XbarConfig {
        quant: tinyadc_xbar::quant::QuantConfig {
            weight_bits: 8,
            input_bits: 8,
        },
        ..narrow
    };
    let m_narrow = MappedLayer::from_param(&w, ParamKind::LinearWeight, narrow).expect("map");
    let m_wide = MappedLayer::from_param(&w, ParamKind::LinearWeight, wide).expect("map");
    let a_narrow = layer_activity(&m_narrow);
    let a_wide = layer_activity(&m_wide);
    assert_eq!(a_wide.tile_cycles, a_narrow.tile_cycles * 2);
    assert_eq!(a_wide.adc_conversions, a_narrow.adc_conversions * 2);
}
