//! Command implementations.
//!
//! Every command takes parsed [`Args`] and returns its human-readable
//! output as a `String` (printed by `main`), which keeps the commands
//! unit-testable.

use crate::{Args, Result};
use std::path::Path;
use tinyadc::config::ModelKind;
use tinyadc::monitor::{
    CanaryProbes, DegradedCampaignConfig, DegradedReport, DriftThresholds, EscalationPolicy,
    HealthMonitor, HealthState, ServeStrategy,
};
use tinyadc::report::TextTable;
use tinyadc::resilience::{
    CampaignConfig, CampaignReport, CampaignRow, CampaignVariant, Mitigation,
};
use tinyadc::{
    Executor, ModelRegistry, Pipeline, PipelineConfig, RegistryServer, ServeConfig, ServiceModel,
    TinyAdcError, TrainedModel,
};
use tinyadc_hw::adc::SarAdcModel;
use tinyadc_hw::energy::{ActivityCounts, EnergyModel};
use tinyadc_hw::latency::LatencyModel;
use tinyadc_nn::data::{DatasetTier, SyntheticImageDataset};
use tinyadc_nn::serialize;
use tinyadc_nn::train::evaluate_top_k;
use tinyadc_obs::{MetricsSnapshot, RunManifest};
use tinyadc_prune::{CpConstraint, CrossbarShape};
use tinyadc_tensor::rng::SeededRng;
use tinyadc_tensor::Tensor;
use tinyadc_xbar::adc::Adc;
use tinyadc_xbar::fault::{FaultModel, LayerFaultMap};
use tinyadc_xbar::mapping::MappedLayer;
use tinyadc_xbar::noise::{IrDropModel, NonIdealPolicy, ReadNoise};
use tinyadc_xbar::program::{BatchWorkspace, CompileOptions, CompiledModel};
use tinyadc_xbar::repair;
use tinyadc_xbar::snapshot;

/// Top-level dispatch; returns the command's printable output.
///
/// # Errors
///
/// Returns a user-facing message for unknown commands or failed options.
pub fn run(args: &Args) -> Result<String> {
    // Only `bench` and `model` take a sub-subcommand; everything else
    // rejects one.
    if args.command != "bench" && args.command != "model" {
        args.no_sub()?;
    }
    let mut out = match args.command.as_str() {
        "train" => cmd_train(args),
        "prune" => cmd_prune(args),
        "audit" => cmd_audit(args),
        "cost" => cmd_cost(args),
        "faults" => cmd_faults(args),
        "serve" => cmd_serve(args),
        "serve-degraded" => cmd_serve_degraded(args),
        "bench" => match args.sub.as_deref() {
            Some("serve") => cmd_bench_serve(args),
            Some("registry") => cmd_bench_registry(args),
            Some(other) => Err(format!(
                "unknown bench target `{other}` (use serve|registry)"
            )),
            None => Err(
                "usage: tinyadc bench serve|registry [--quick 1] [--seed N] [--out FILE]".into(),
            ),
        },
        "model" => match args.sub.as_deref() {
            Some("save") => cmd_model_save(args),
            Some("load") => cmd_model_load(args),
            Some(other) => Err(format!("unknown model action `{other}` (use save|load)")),
            None => Err("usage: tinyadc model save|load (see `tinyadc help`)".into()),
        },
        "infer" => cmd_infer(args),
        "adc" => cmd_adc(args),
        "report" => cmd_report(args),
        "help" => Ok(usage()),
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    }?;
    // Every subcommand accepts `--trace FILE`: after the command finishes,
    // its completed spans are exported in chrome://tracing JSON format.
    if let Some(path) = args.get("trace") {
        let trace = tinyadc_obs::chrome_trace(&tinyadc_obs::spans());
        std::fs::write(path, trace).map_err(|e| e.to_string())?;
        out.push_str(&format!("wrote span trace to {path}\n"));
    }
    Ok(out)
}

/// The usage text.
pub fn usage() -> String {
    "tinyadc — peripheral-circuit-aware pruning for ReRAM accelerators\n\
     \n\
     USAGE: tinyadc <command> [--key value ...]\n\
     \n\
     COMMANDS\n\
     train   --tier cifar10|cifar100|imagenet --model resnet18|resnet50|vgg16\n\
     \x20       [--epochs N] [--width N] [--seed N] [--out FILE]\n\
     prune   --tier .. --model .. --in FILE --rate N [--filters F] [--out FILE]\n\
     audit   --tier .. --model .. --in FILE   per-layer crossbar/ADC audit\n\
     cost    --tier .. --model .. --in FILE   accelerator power/area vs baseline\n\
     faults  --tier .. --model .. --in FILE   Monte-Carlo fault campaign\n\
     \x20       [--rates R1,R2|--rate R] [--seeds N] [--spares K] [--cp-l L]\n\
     \x20       [--strategies none,spares,retrain,redistribute]\n\
     \x20       [--out CSV] [--json FILE]\n\
     \x20       [--recover 1]  degraded-mode demo: fault, then masked retrain\n\
     \x20       [--quick 1]    self-contained campaign smoke test\n\
     serve                                    deterministic serving replay:\n\
     \x20       closed-loop clients against the compiled dense and CP-pruned\n\
     \x20       models on one virtual-time trace; prints latency percentiles\n\
     \x20       [--kind bursty|diurnal|adversarial] [--clients N]\n\
     \x20       [--requests N] [--seed N] [--quick 1]\n\
     \x20       [--registry 1] multi-tenant replay instead: both models\n\
     \x20       resident behind one shared queue, with a mid-trace zero-drop\n\
     \x20       hot-swap of the dense tenant to a snapshot-restored CP program\n\
     model save                               compile a model and persist the\n\
     \x20       exact execution program as a versioned binary snapshot; the\n\
     \x20       snapshot is reloaded and verified byte- and bit-identical\n\
     \x20       --out FILE [--quick 1 | --tier .. --model .. [--in FILE]]\n\
     model load --in FILE                     restore a program snapshot and\n\
     \x20       print its shape, modeled ADC cost and a seeded output digest\n\
     bench serve                              full serving benchmark: sweep\n\
     \x20       client levels x traces for dense vs CP, emit throughput-vs-p99\n\
     \x20       curves to BENCH_serving.json; fails unless CP dominates dense\n\
     \x20       at iso-p99  [--quick 1] [--seed N] [--out FILE]\n\
     bench registry                           multi-tenant registry benchmark:\n\
     \x20       sweep client levels x traces with dense + CP tenants resident,\n\
     \x20       hot-swapping the dense tenant mid-trace; emits\n\
     \x20       BENCH_registry.json; fails unless every admitted request\n\
     \x20       completed  [--quick 1] [--seed N] [--out FILE]\n\
     serve-degraded                           degraded-mode serving campaign:\n\
     \x20       sweep wire resistance x read noise x fault rate x strategy on\n\
     \x20       the compiled datapath, with canary health checks and automatic\n\
     \x20       repair escalation (spares -> masked recompile)\n\
     \x20       [--wire-res R1,R2] [--sigmas S1,S2] [--rates F1,F2]\n\
     \x20       [--strategies ideal,spares,recompile] [--probes N] [--seed N]\n\
     \x20       [--out CSV] [--json FILE]\n\
     \x20       [--quick 1]    tiny grid + CP-dominates-dense gate\n\
     infer   --tier .. --model .. [--in FILE] compile-once/run-many inference:\n\
     \x20       [--executor engine|datapath|both]  weight-domain audit vs the\n\
     \x20       [--quick 1]                        bit-serial crossbar datapath\n\
     adc     [--bits N]                       ADC cost table\n\
     report  [--seed N] [--metrics-csv FILE]  observability demo: run the\n\
     \x20       example pipeline, dump the run manifest + metric snapshot\n\
     \x20       (JSON) and the hardware-event energy/latency roll-up\n\
     help                                     this text\n\
     \n\
     Common options: --rows/--cols (crossbar, default 16x8), --train/--test\n\
     (split sizes, default 800/300), --seed (default 2021), --trace FILE\n\
     (write completed spans as chrome://tracing JSON, any command)."
        .to_owned()
}

fn tier_of(args: &Args) -> Result<DatasetTier> {
    match args.required("tier")? {
        "cifar10" => Ok(DatasetTier::Tier1Cifar10Like),
        "cifar100" => Ok(DatasetTier::Tier2Cifar100Like),
        "imagenet" => Ok(DatasetTier::Tier3ImageNetLike),
        other => Err(format!(
            "unknown tier `{other}` (use cifar10|cifar100|imagenet)"
        )),
    }
}

fn model_of(args: &Args) -> Result<ModelKind> {
    match args.required("model")? {
        "resnet18" => Ok(ModelKind::ResNetS),
        "resnet50" => Ok(ModelKind::ResNetM),
        "vgg16" => Ok(ModelKind::VggS),
        other => Err(format!(
            "unknown model `{other}` (use resnet18|resnet50|vgg16)"
        )),
    }
}

fn pipeline_of(args: &Args) -> Result<(Pipeline, SyntheticImageDataset, SeededRng)> {
    let tier = tier_of(args)?;
    let model = model_of(args)?;
    let seed: u64 = args.get_or("seed", 2021)?;
    let train: usize = args.get_or("train", 800)?;
    let test: usize = args.get_or("test", 300)?;
    let rows: usize = args.get_or("rows", 16)?;
    let cols: usize = args.get_or("cols", 8)?;
    let width: usize = args.get_or("width", 8)?;
    let epochs: usize = args.get_or("epochs", 8)?;

    let mut cfg = PipelineConfig::experiment_default();
    cfg.model = model;
    cfg.model_width = width;
    cfg.xbar.shape = CrossbarShape::new(rows, cols).map_err(|e| e.to_string())?;
    cfg.pretrain.epochs = epochs;
    cfg.admm_train.epochs = args.get_or("admm-epochs", 4)?;
    cfg.retrain.epochs = args.get_or("retrain-epochs", 4)?;

    let mut rng = SeededRng::new(seed);
    let data =
        SyntheticImageDataset::generate(tier, train, test, &mut rng).map_err(|e| e.to_string())?;
    Ok((Pipeline::new(cfg), data, rng))
}

fn load_into(
    pipeline: &Pipeline,
    data: &SyntheticImageDataset,
    path: &str,
    rng: &mut SeededRng,
) -> Result<tinyadc_nn::Network> {
    let mut net = pipeline.build_model(data, rng).map_err(|e| e.to_string())?;
    serialize::load_network(&mut net, Path::new(path)).map_err(|e| e.to_string())?;
    Ok(net)
}

fn cmd_train(args: &Args) -> Result<String> {
    let (pipeline, data, mut rng) = pipeline_of(args)?;
    let trained = pipeline
        .pretrain(&data, &mut rng)
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "trained {} on {}: accuracy {:.2} %\n",
        pipeline.config().model,
        data.tier(),
        trained.accuracy * 100.0
    );
    if let Some(path) = args.get("out") {
        let mut net = pipeline
            .restore(&data, &trained, &mut rng)
            .map_err(|e| e.to_string())?;
        serialize::save_network(&mut net, Path::new(path)).map_err(|e| e.to_string())?;
        out.push_str(&format!("saved to {path}\n"));
    }
    Ok(out)
}

fn cmd_prune(args: &Args) -> Result<String> {
    let (pipeline, data, mut rng) = pipeline_of(args)?;
    let input = args.required("in")?.to_owned();
    let rate: usize = args.get_or("rate", 8)?;
    let filters: f64 = args.get_or("filters", 0.0)?;

    let mut dense = load_into(&pipeline, &data, &input, &mut rng)?;
    let accuracy = evaluate_top_k(&mut dense, &data, 1, 64)
        .map_err(|e| e.to_string())?
        .value();
    let trained = TrainedModel::from_network(&mut dense, accuracy);

    let (report, mut net) = if filters > 0.0 {
        pipeline
            .run_combined_with_network(&data, &trained, rate, filters, 0.0, &mut rng)
            .map_err(|e| e.to_string())?
    } else {
        pipeline
            .run_cp_with_network(&data, &trained, rate, &mut rng)
            .map_err(|e| e.to_string())?
    };
    let mut out = format!("{}\n", report.summary());
    if let Some(path) = args.get("out") {
        serialize::save_network(&mut net, Path::new(path)).map_err(|e| e.to_string())?;
        out.push_str(&format!("saved pruned model to {path}\n"));
    }
    Ok(out)
}

fn cmd_audit(args: &Args) -> Result<String> {
    let (pipeline, data, mut rng) = pipeline_of(args)?;
    let input = args.required("in")?.to_owned();
    let mut net = load_into(&pipeline, &data, &input, &mut rng)?;
    let skip = pipeline.skip_list(&mut net);
    let audit = tinyadc::NetworkAudit::of(&mut net, pipeline.config().xbar, &skip)
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "{}\nbaseline ADC: {} bits; worst-case reduction: -{} bits\n",
        audit.to_text_table().render(),
        audit.baseline_adc_bits,
        audit.adc_bits_reduction()
    ))
}

fn cmd_cost(args: &Args) -> Result<String> {
    let (pipeline, data, mut rng) = pipeline_of(args)?;
    let input = args.required("in")?.to_owned();
    let mut net = load_into(&pipeline, &data, &input, &mut rng)?;
    let skip = pipeline.skip_list(&mut net);
    let audit = tinyadc::NetworkAudit::of(&mut net, pipeline.config().xbar, &skip)
        .map_err(|e| e.to_string())?;
    let model = tinyadc_hw::accelerator::AcceleratorModel::default();
    let design = audit.to_design();
    let baseline = audit.to_baseline_design();
    let cost = model.cost(&design).map_err(|e| e.to_string())?;
    let normalized = model
        .normalized(&design, &baseline)
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "arrays: {}  tiles: {}\npower: {:.1} mW (x{:.3} of baseline)\narea: {:.4} mm^2 (x{:.3} of baseline)\nADC share: {:.0}% power, {:.0}% area\n",
        cost.arrays,
        cost.tiles,
        cost.power_mw,
        normalized.power,
        cost.area_mm2,
        normalized.area,
        cost.adc_power_fraction() * 100.0,
        cost.adc_area_fraction() * 100.0,
    ))
}

fn parse_rates(args: &Args) -> Result<Vec<f64>> {
    if let Some(spec) = args.get("rates") {
        spec.split(',')
            .map(|t| {
                t.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("option --rates: cannot parse `{t}`"))
            })
            .collect()
    } else {
        Ok(vec![args.get_or("rate", 0.10)?])
    }
}

fn parse_strategies(args: &Args, spares: usize) -> Result<Vec<Mitigation>> {
    args.get("strategies")
        .unwrap_or("none")
        .split(',')
        .map(|t| Mitigation::parse(t, spares).map_err(|e| e.to_string()))
        .collect()
}

/// Renders a campaign report as a table, one row per (variant, strategy,
/// rate) cell with seeds averaged.
fn render_campaign(report: &CampaignReport) -> String {
    let mut table = TextTable::new(&[
        "Variant",
        "Strategy",
        "Rate",
        "Acc %",
        "Drop",
        "Damage",
        "Faults",
        "Remapped",
        "Unrepaired",
    ]);
    let mut keys: Vec<(String, String, f64)> = Vec::new();
    for r in &report.rows {
        let k = (r.variant.clone(), r.strategy.clone(), r.rate);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    for (v, s, rate) in &keys {
        let rows: Vec<&CampaignRow> = report
            .rows
            .iter()
            .filter(|r| &r.variant == v && &r.strategy == s && r.rate == *rate)
            .collect();
        let n = rows.len() as f64;
        let mean = |f: &dyn Fn(&CampaignRow) -> f64| rows.iter().map(|r| f(r)).sum::<f64>() / n;
        table.row_owned(vec![
            v.clone(),
            s.clone(),
            format!("{rate}"),
            format!("{:.2}", mean(&|r| r.accuracy) * 100.0),
            format!("{:.2}", mean(&|r| r.accuracy_drop) * 100.0),
            format!("{:.4}", mean(&|r| r.weight_damage)),
            rows.iter().map(|r| r.faults).sum::<usize>().to_string(),
            rows.iter()
                .map(|r| r.remapped_columns)
                .sum::<usize>()
                .to_string(),
            rows.iter()
                .map(|r| r.unrepaired_columns)
                .sum::<usize>()
                .to_string(),
        ]);
    }
    table.render()
}

/// Self-contained campaign smoke test: train a tiny dense model and a CP
/// 4× pruned sibling, sweep two fault rates over two seeds without
/// mitigation, and assert the report round-trips through CSV and shows
/// the CP variant taking no more weight damage than the dense one.
fn cmd_faults_quick(args: &Args) -> Result<String> {
    let mut rng = SeededRng::new(7);
    let data = SyntheticImageDataset::generate(DatasetTier::Tier1Cifar10Like, 60, 30, &mut rng)
        .map_err(|e| e.to_string())?;
    let pipeline = Pipeline::new(PipelineConfig::quick_test());
    let trained = pipeline
        .pretrain(&data, &mut rng)
        .map_err(|e| e.to_string())?;
    let (cp_report, mut cp_net) = pipeline
        .run_cp_with_network(&data, &trained, 4, &mut rng)
        .map_err(|e| e.to_string())?;
    let mut dense_net = pipeline
        .restore(&data, &trained, &mut rng)
        .map_err(|e| e.to_string())?;
    let cp_l = CpConstraint::from_rate(pipeline.config().xbar.shape, 4)
        .map_err(|e| e.to_string())?
        .max_nonzeros_per_column();
    let variants = vec![
        CampaignVariant::from_network("dense", &mut dense_net, None, trained.accuracy),
        CampaignVariant::from_network("cp4x", &mut cp_net, Some(cp_l), cp_report.final_accuracy),
    ];
    let config = CampaignConfig {
        rates: vec![0.05, 0.15],
        seeds: vec![1, 2],
        strategies: vec![Mitigation::None],
        eval_batch: 32,
    };
    let report = pipeline
        .run_fault_campaign(&data, &variants, &config)
        .map_err(|e| e.to_string())?;
    let csv = report.to_csv();
    let parsed = CampaignReport::from_csv(&csv).map_err(|e| e.to_string())?;
    if parsed != report {
        return Err("campaign CSV round-trip mismatch".into());
    }
    let dominates = report.cp_dominates("cp4x", "dense");
    let mut out = render_campaign(&report);
    out.push_str("report parse round-trip: OK\n");
    out.push_str(&format!(
        "CP dominates dense (weight damage): {}\n",
        if dominates { "yes" } else { "no" }
    ));
    if let Some(path) = args.get("out") {
        std::fs::write(path, &csv).map_err(|e| e.to_string())?;
        out.push_str(&format!("wrote campaign CSV to {path}\n"));
    }
    if !dominates {
        return Err(format!(
            "{out}\nFAIL: CP-pruned weight damage exceeded dense at some rate"
        ));
    }
    Ok(out)
}

fn cmd_faults(args: &Args) -> Result<String> {
    if args.quick() {
        return cmd_faults_quick(args);
    }
    let (pipeline, data, mut rng) = pipeline_of(args)?;
    let input = args.required("in")?.to_owned();
    let rates = parse_rates(args)?;
    let spares: usize = args.get_or("spares", 2)?;
    let strategies = parse_strategies(args, spares)?;
    let n_seeds: u64 = args.get_or("seeds", 3)?;

    let mut net = load_into(&pipeline, &data, &input, &mut rng)?;
    let clean = evaluate_top_k(&mut net, &data, 1, 64)
        .map_err(|e| e.to_string())?
        .value();

    if args.get("recover").is_some() {
        // Degraded mode: fault the device at the first rate, then recover
        // via fault-masked retraining on the same faulty hardware.
        let model = FaultModel::from_overall_rate(rates[0]).map_err(|e| e.to_string())?;
        let rec = pipeline
            .recover_from_faults(&mut net, &data, &model, &mut rng)
            .map_err(|e| e.to_string())?;
        return Ok(format!(
            "fault-free accuracy: {:.2} %\n\
             faulted accuracy at {:.1}% stuck-at: {:.2} % ({} faults, {} harmless SA0)\n\
             recovered accuracy after masked retraining: {:.2} % ({} weights frozen)\n",
            clean * 100.0,
            rates[0] * 100.0,
            rec.faulted_accuracy * 100.0,
            rec.faults.total_faults(),
            rec.faults.sa0_harmless,
            rec.recovered_accuracy * 100.0,
            rec.masked_weights,
        ));
    }

    let cp_l = match args.get("cp-l") {
        None => None,
        Some(_) => Some(args.get_or("cp-l", 0usize)?),
    };
    let variant = CampaignVariant::from_network("model", &mut net, cp_l, clean);
    let config = CampaignConfig {
        rates,
        seeds: (1..=n_seeds).collect(),
        strategies,
        eval_batch: 64,
    };
    let report = pipeline
        .run_fault_campaign(&data, &[variant], &config)
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "fault-free accuracy: {:.2} %\n{}",
        clean * 100.0,
        render_campaign(&report)
    );
    if let Some(path) = args.get("out") {
        std::fs::write(path, report.to_csv()).map_err(|e| e.to_string())?;
        out.push_str(&format!("wrote campaign CSV to {path}\n"));
    }
    if let Some(path) = args.get("json") {
        std::fs::write(path, report.to_json()).map_err(|e| e.to_string())?;
        out.push_str(&format!("wrote campaign JSON to {path}\n"));
    }
    Ok(out)
}

fn parse_f64_list(args: &Args, key: &str, default: &[f64]) -> Result<Vec<f64>> {
    match args.get(key) {
        Some(spec) => spec
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("option --{key}: cannot parse `{t}`"))
            })
            .collect(),
        None => Ok(default.to_vec()),
    }
}

/// Renders a degraded campaign, one row per grid cell.
fn render_degraded(report: &DegradedReport) -> String {
    let mut table = TextTable::new(&[
        "Variant", "Strategy", "WireR", "Sigma", "Rate", "Acc %", "Drop", "Agree", "Health",
        "Repair", "Retries",
    ]);
    for r in &report.rows {
        table.row_owned(vec![
            r.variant.clone(),
            r.strategy.clone(),
            format!("{}", r.wire_resistance_ohm),
            format!("{}", r.noise_sigma),
            format!("{}", r.fault_rate),
            format!("{:.2}", r.accuracy * 100.0),
            format!("{:.2}", r.accuracy_drop * 100.0),
            format!("{:.2}", r.canary_agreement),
            r.health.clone(),
            r.repair.clone(),
            r.retries.to_string(),
        ]);
    }
    table.render()
}

/// Degraded-mode serving campaign: trains a tiny dense model and a CP 4×
/// pruned sibling, then sweeps wire resistance × read-noise sigma ×
/// stuck-at rate × serving strategy over the compiled datapath — every
/// cell compiles a faulty non-ideal device instance, health-checks it
/// against seeded canary probes, escalates the repair ladder per the
/// strategy, and measures served test accuracy. `--quick` shrinks the
/// grid and gates that CP-pruned accuracy dominates dense at the highest
/// swept stress point (the paper's graceful-degradation claim carried
/// onto the serving path).
/// Renders one serving curve point as a human-readable line.
fn render_point(name: &str, p: &tinyadc_bench::serving::CurvePoint) -> String {
    format!(
        "{name:>6}: {} completed / {} rejected in {} ticks | {:.3} req/ktick | \
         p50 {} p95 {} p99 {}\n",
        p.completed, p.rejected, p.makespan, p.throughput_rpk, p.p50, p.p95, p.p99
    )
}

fn cmd_serve(args: &Args) -> Result<String> {
    use tinyadc_bench::serving;
    let quick = args.quick();
    let seed: u64 = args.get_or("seed", 2021)?;
    let kind_s = args.get("kind").unwrap_or("bursty");
    let kind = serving::TraceKind::parse(kind_s)
        .ok_or_else(|| format!("unknown trace kind `{kind_s}` (use bursty|diurnal|adversarial)"))?;
    let clients: usize = args.get_or("clients", 4)?;
    let requests: usize = args.get_or("requests", if quick { 8 } else { 16 })?;
    let pool =
        serving::prepare_models(tinyadc_bench::Profile::Quick, seed).map_err(|e| e.to_string())?;
    let cfg = serving::serve_config_for(&pool.dense);
    if args.get("registry").is_some() {
        return serve_registry_replay(&pool, cfg, kind, clients, requests, seed);
    }
    let dense = serving::run_trace(&pool.dense, cfg, kind, clients, requests, seed, &pool)
        .map_err(|e| e.to_string())?;
    let cp = serving::run_trace(&pool.cp, cfg, kind, clients, requests, seed, &pool)
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "serving replay: trace {} | {clients} clients x {requests} requests | seed {seed}\n\
         server: queue {} | batch {} | deadline {} ticks | {} lanes | \
         {} SAR cycles/tick\n\
         models: dense {} SAR cycles/request, cp4x {} ({}% of dense)\n",
        kind.name(),
        cfg.queue_depth,
        cfg.max_batch,
        cfg.flush_deadline,
        cfg.ring_slots,
        cfg.service.cycles_per_tick,
        pool.dense.sample_sar_cycles(),
        pool.cp.sample_sar_cycles(),
        pool.cp.sample_sar_cycles() * 100 / pool.dense.sample_sar_cycles().max(1),
    );
    out.push_str(&render_point("dense", &dense));
    out.push_str(&render_point("cp4x", &cp));
    Ok(out)
}

fn cmd_bench_serve(args: &Args) -> Result<String> {
    use tinyadc_bench::serving;
    let quick = args.quick();
    let seed: u64 = args.get_or("seed", tinyadc_bench::SEED)?;
    let profile = if quick {
        tinyadc_bench::Profile::Quick
    } else {
        tinyadc_bench::Profile::Full
    };
    let report = serving::run_serving_bench(profile, seed).map_err(|e| e.to_string())?;
    let default_path = if quick {
        "BENCH_serving.quick.json"
    } else {
        "BENCH_serving.json"
    };
    let path = args.get("out").unwrap_or(default_path);
    std::fs::write(path, report.to_json()).map_err(|e| e.to_string())?;
    let mut out = format!(
        "serving bench ({}, seed {seed}): dense {} vs cp4x {} SAR cycles/request\n",
        report.profile, report.dense_model.sample_sar_cycles, report.cp_model.sample_sar_cycles
    );
    for t in &report.traces {
        let peak = |c: &[serving::CurvePoint]| {
            c.iter()
                .map(|p| (p.throughput_rpk, p.p99))
                .fold((0.0f64, 0u64), |a, b| if b.0 > a.0 { b } else { a })
        };
        let (dt, dp99) = peak(&t.dense);
        let (ct, cp99) = peak(&t.cp);
        out.push_str(&format!(
            "{:>12}: dense peak {dt:.3} req/ktick (p99 {dp99}) | cp4x peak {ct:.3} \
             (p99 {cp99}) | cp dominates at iso-p99: {}\n",
            t.trace.name(),
            if t.cp_dominates() { "yes" } else { "no" }
        ));
    }
    out.push_str(&format!("wrote {path}\n"));
    if !report.cp_dominates() {
        return Err(format!(
            "{out}\nFAIL: dense out-served CP-pruned at iso-p99 on some trace"
        ));
    }
    Ok(out)
}

/// The `serve --registry` path: both compiled models resident as tenants
/// behind one shared admission queue, replayed under the same closed-loop
/// trace, with a mid-trace zero-drop hot-swap of the dense tenant.
fn serve_registry_replay(
    pool: &tinyadc_bench::serving::ServingModels,
    cfg: tinyadc::ServeConfig,
    kind: tinyadc_bench::serving::TraceKind,
    clients: usize,
    requests: usize,
    seed: u64,
) -> Result<String> {
    use tinyadc_bench::registry as regbench;
    let p = regbench::run_registry_trace(pool, cfg, kind, clients, requests, seed)
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "registry replay: trace {} | {clients} clients x {requests} requests | seed {seed}\n\
         tenants: {} (dense, hot-swapped mid-trace to a snapshot-restored CP program) \
         and {} (CP)\n\
         {} offered | {} admitted | {} rejected (retried) | {} completed | {} dropped\n\
         hot-swap at tick {} of {} | {:.3} req/ktick\n",
        kind.name(),
        regbench::SWAP_TAG,
        regbench::CP_TAG,
        p.offered,
        p.admitted,
        p.rejected,
        p.completed,
        p.dropped,
        p.swap_tick,
        p.makespan,
        p.throughput_rpk,
    );
    for t in &p.tenants {
        out.push_str(&format!(
            "{:>12}: {} completed | p50 {} p95 {} p99 {}\n",
            t.tag, t.completed, t.p50, t.p95, t.p99
        ));
    }
    if p.dropped != 0 {
        return Err(format!(
            "{out}\nFAIL: the hot-swap dropped admitted requests"
        ));
    }
    out.push_str("zero-drop hot-swap: verified\n");
    Ok(out)
}

fn cmd_bench_registry(args: &Args) -> Result<String> {
    use tinyadc_bench::registry as regbench;
    let quick = args.quick();
    let seed: u64 = args.get_or("seed", tinyadc_bench::SEED)?;
    let profile = if quick {
        tinyadc_bench::Profile::Quick
    } else {
        tinyadc_bench::Profile::Full
    };
    let report = regbench::run_registry_bench(profile, seed).map_err(|e| e.to_string())?;
    let default_path = if quick {
        "BENCH_registry.quick.json"
    } else {
        "BENCH_registry.json"
    };
    let path = args.get("out").unwrap_or(default_path);
    std::fs::write(path, report.to_json()).map_err(|e| e.to_string())?;
    let mut out = format!(
        "registry bench ({}, seed {seed}): tenants {}\n",
        report.profile,
        report
            .tenants
            .iter()
            .map(|(tag, m)| format!("{tag} ({} SAR cycles/request)", m.sample_sar_cycles))
            .collect::<Vec<_>>()
            .join(", "),
    );
    for t in &report.traces {
        let peak = t
            .points
            .iter()
            .map(|p| p.throughput_rpk)
            .fold(0.0f64, f64::max);
        let dropped: u64 = t.points.iter().map(|p| p.dropped).sum();
        out.push_str(&format!(
            "{:>12}: peak {peak:.3} req/ktick | {} runs, {} dropped across hot-swaps\n",
            t.trace.name(),
            t.points.len(),
            dropped,
        ));
    }
    out.push_str(&format!("wrote {path}\n"));
    if !report.zero_dropped() {
        return Err(format!(
            "{out}\nFAIL: a hot-swap dropped admitted requests on some trace"
        ));
    }
    Ok(out)
}

/// Builds a compiled program for `model save`: either the self-contained
/// quick profile (seeded synthetic pretrain) or the full
/// `--tier/--model/[--in]` path shared with `infer`.
fn model_to_save(args: &Args) -> Result<CompiledModel> {
    if args.quick() {
        let seed: u64 = args.get_or("seed", 7)?;
        let mut rng = SeededRng::new(seed);
        let data = SyntheticImageDataset::generate(DatasetTier::Tier1Cifar10Like, 60, 30, &mut rng)
            .map_err(|e| e.to_string())?;
        let pipeline = Pipeline::new(PipelineConfig::quick_test());
        let trained = pipeline
            .pretrain(&data, &mut rng)
            .map_err(|e| e.to_string())?;
        let net = pipeline
            .restore(&data, &trained, &mut rng)
            .map_err(|e| e.to_string())?;
        CompiledModel::compile(&net, pipeline.config().xbar, &CompileOptions::default())
            .map_err(|e| e.to_string())
    } else {
        let (pipeline, data, mut rng) = pipeline_of(args)?;
        let net = if let Some(path) = args.get("in") {
            load_into(&pipeline, &data, path, &mut rng)?
        } else {
            let trained = pipeline
                .pretrain(&data, &mut rng)
                .map_err(|e| e.to_string())?;
            pipeline
                .restore(&data, &trained, &mut rng)
                .map_err(|e| e.to_string())?
        };
        CompiledModel::compile(&net, pipeline.config().xbar, &CompileOptions::default())
            .map_err(|e| e.to_string())
    }
}

/// One line of shape/cost facts about a compiled program.
fn describe_program(m: &CompiledModel) -> String {
    format!(
        "program `{}`: {} steps, {} crossbar layers, input {:?}, output {} floats, \
         {} conversions x {} SAR cycles per sample\n",
        m.name(),
        m.step_count(),
        m.crossbar_layers().len(),
        m.input_dims(),
        m.output_len(),
        m.sample_conversions(),
        m.sample_sar_cycles(),
    )
}

/// A seeded deterministic digest of a program's outputs: one batch of
/// uniform inputs through the bit-serial datapath, output bits folded
/// with an FNV-1a accumulator. Identical programs print identical
/// digests on any machine and any thread count.
fn output_digest(m: &CompiledModel, seed: u64) -> Result<u64> {
    let vol: usize = m.input_dims().iter().product();
    let mut rng = SeededRng::new(seed);
    let pack = Tensor::uniform(&[4, vol.max(1)], 0.0, 1.0, &mut rng);
    let mut ws = BatchWorkspace::default();
    let mut out = Vec::new();
    m.run_packed_into(pack.as_slice(), &mut ws, &mut out)
        .map_err(|e| e.to_string())?;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in &out {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    Ok(h)
}

fn cmd_model_save(args: &Args) -> Result<String> {
    let out_path = args.required("out")?.to_owned();
    let model = model_to_save(args)?;
    snapshot::save_model(&model, Path::new(&out_path)).map_err(|e| e.to_string())?;
    // Reload and verify the persistence contract on the spot: the
    // snapshot re-encodes to the same bytes and computes the same bits.
    let reloaded = snapshot::load_model(Path::new(&out_path)).map_err(|e| e.to_string())?;
    let mut original = Vec::new();
    snapshot::write_model(&mut original, &model).map_err(|e| e.to_string())?;
    let mut round = Vec::new();
    snapshot::write_model(&mut round, &reloaded).map_err(|e| e.to_string())?;
    if original != round {
        return Err("snapshot round trip changed the encoded bytes".into());
    }
    let seed: u64 = args.get_or("seed", 7)?;
    let digest = output_digest(&model, seed)?;
    if output_digest(&reloaded, seed)? != digest {
        return Err("reloaded program computed different output bits".into());
    }
    let mut out = describe_program(&model);
    out.push_str(&format!(
        "wrote {out_path} ({} bytes), reloaded and verified byte- and bit-identical\n\
         output digest (seed {seed}): {digest:016x}\n",
        original.len(),
    ));
    Ok(out)
}

fn cmd_model_load(args: &Args) -> Result<String> {
    let in_path = args.required("in")?;
    let model = snapshot::load_model(Path::new(in_path)).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 7)?;
    let mut out = describe_program(&model);
    out.push_str(&format!(
        "output digest (seed {seed}): {:016x}\n",
        output_digest(&model, seed)?
    ));
    Ok(out)
}

fn cmd_serve_degraded(args: &Args) -> Result<String> {
    let quick = args.quick();
    let seed: u64 = args.get_or("seed", 7)?;
    // Larger than the other `--quick` smokes: the campaign compares
    // *served accuracy*, so the baseline must sit well above chance for
    // degradation (and its mitigation) to be visible at all.
    let train: usize = args.get_or("train", 240)?;
    let test: usize = args.get_or("test", 60)?;
    let mut rng = SeededRng::new(seed);
    let data =
        SyntheticImageDataset::generate(DatasetTier::Tier1Cifar10Like, train, test, &mut rng)
            .map_err(|e| e.to_string())?;
    let mut cfg = PipelineConfig::quick_test();
    cfg.pretrain.epochs = args.get_or("epochs", 6)?;
    cfg.admm_train.epochs = args.get_or("admm-epochs", 2)?;
    cfg.retrain.epochs = args.get_or("retrain-epochs", 2)?;
    let pipeline = Pipeline::new(cfg);
    let trained = pipeline
        .pretrain(&data, &mut rng)
        .map_err(|e| e.to_string())?;
    let (cp_report, mut cp_net) = pipeline
        .run_cp_with_network(&data, &trained, 4, &mut rng)
        .map_err(|e| e.to_string())?;
    let mut dense_net = pipeline
        .restore(&data, &trained, &mut rng)
        .map_err(|e| e.to_string())?;
    let cp_l = CpConstraint::from_rate(pipeline.config().xbar.shape, 4)
        .map_err(|e| e.to_string())?
        .max_nonzeros_per_column();
    let variants = vec![
        CampaignVariant::from_network("dense", &mut dense_net, None, trained.accuracy),
        CampaignVariant::from_network("cp4x", &mut cp_net, Some(cp_l), cp_report.final_accuracy),
    ];

    // Stuck-at rates are an order of magnitude below the weight-damage
    // campaign's: unrepaired faults at the tiny quick-test scale wipe
    // served accuracy to chance well before 5%, leaving nothing to
    // compare. ~1% is where degradation is severe but still graded.
    let (wire_d, sigma_d, rate_d): (&[f64], &[f64], &[f64]) = if quick {
        (&[0.0, 2.0], &[0.05], &[0.01])
    } else {
        (&[0.0, 1.0, 2.0], &[0.0, 0.05, 0.1], &[0.0, 0.005, 0.01])
    };
    let strategies = args
        .get("strategies")
        .unwrap_or(if quick {
            "ideal,spares"
        } else {
            "ideal,spares,recompile"
        })
        .split(',')
        .map(|t| ServeStrategy::parse(t).map_err(|e| e.to_string()))
        .collect::<Result<Vec<_>>>()?;
    let config = DegradedCampaignConfig {
        wire_resistances_ohm: parse_f64_list(args, "wire-res", wire_d)?,
        noise_sigmas: parse_f64_list(args, "sigmas", sigma_d)?,
        fault_rates: parse_f64_list(args, "rates", rate_d)?,
        strategies,
        thresholds: DriftThresholds::default(),
        escalation: EscalationPolicy::default(),
        canary_probes: args.get_or("probes", 8)?,
        eval_batch: 32,
        seed,
    };
    let report = pipeline
        .run_degraded_campaign(&data, &variants, &config)
        .map_err(|e| e.to_string())?;
    let csv = report.to_csv();
    let parsed = DegradedReport::from_csv(&csv).map_err(|e| e.to_string())?;
    if parsed != report {
        return Err("degraded campaign CSV round-trip mismatch".into());
    }
    let dominates = report.cp_dominates("cp4x", "dense");
    let mut out = render_degraded(&report);
    out.push_str("report parse round-trip: OK\n");
    out.push_str(&format!(
        "CP dominates dense (served accuracy at peak stress): {}\n",
        if dominates { "yes" } else { "no" }
    ));
    if let Some(path) = args.get("out") {
        std::fs::write(path, &csv).map_err(|e| e.to_string())?;
        out.push_str(&format!("wrote degraded campaign CSV to {path}\n"));
    }
    if let Some(path) = args.get("json") {
        std::fs::write(path, report.to_json()).map_err(|e| e.to_string())?;
        out.push_str(&format!("wrote degraded campaign JSON to {path}\n"));
    }
    if quick && !dominates {
        return Err(format!(
            "{out}\nFAIL: dense out-served CP-pruned at the highest swept stress point"
        ));
    }
    Ok(out)
}

/// Everything `tinyadc report` produces, in machine-readable form.
///
/// Split out from the rendering so tests (notably the workspace's
/// `obs_determinism` tier-1 suite) can compare the JSON artifacts across
/// thread counts without scraping human-readable output.
pub struct ExampleReport {
    /// Provenance of the run: config hash, seed, threads, git describe.
    pub manifest: RunManifest,
    /// Name-sorted snapshot of every registered metric.
    pub metrics: MetricsSnapshot,
    /// Energy/latency roll-up derived from the counter stream (JSON).
    pub rollup_json: String,
}

/// Runs the self-contained example pipeline under full instrumentation
/// and returns the run manifest, the metric snapshot and the
/// hardware-event roll-up.
///
/// The workload is deliberately small but exercises every instrumented
/// layer: pretrain + ADMM CP pruning (train/prune counters, phase
/// spans), crossbar batched MVMs at the required and at a 2-bit starved
/// ADC resolution (conversion/saturation counters), and a fault
/// injection + spare-column repair pass (fault/repair counters). Metric
/// values depend only on `seed`, never on `TINYADC_THREADS`.
///
/// # Errors
///
/// Returns a rendered message when any pipeline or mapping stage fails,
/// or when the snapshot fails its internal JSON/CSV round-trip check.
pub fn example_report(seed: u64) -> Result<ExampleReport> {
    tinyadc_obs::reset();
    let _span = tinyadc_obs::span("report.example");
    let mut rng = SeededRng::new(seed);
    let data = SyntheticImageDataset::generate(DatasetTier::Tier1Cifar10Like, 60, 30, &mut rng)
        .map_err(|e| e.to_string())?;
    let pipeline = Pipeline::new(PipelineConfig::quick_test());
    let trained = pipeline
        .pretrain(&data, &mut rng)
        .map_err(|e| e.to_string())?;
    let (_report, mut net) = pipeline
        .run_cp_with_network(&data, &trained, 4, &mut rng)
        .map_err(|e| e.to_string())?;

    // Map the first prunable parameter onto crossbars and drive the
    // instrumented datapath: a batch at the ADC resolution the layer
    // needs, then the same batch through a 2-bit starved ADC so the
    // saturation counter has something to say.
    let mut first: Option<(tinyadc_nn::ParamKind, Tensor)> = None;
    net.visit_params(&mut |p| {
        if first.is_none() && p.kind.is_prunable() {
            first = Some((p.kind, p.value.clone()));
        }
    });
    let (kind, value) = first.ok_or("example model has no prunable parameter")?;
    let xbar = pipeline.config().xbar;
    let mut mapped = MappedLayer::from_param(&value, kind, xbar).map_err(|e| e.to_string())?;
    let adc_bits = mapped.required_adc_bits();
    let (matrix_rows, _) = mapped.matrix_dims();
    let n_inputs = 8;
    let code_range = 1u64 << xbar.dac_bits;
    let inputs: Vec<u64> = (0..matrix_rows * n_inputs)
        .map(|_| rng.next_u64() % code_range)
        .collect();
    let adc = Adc::new(adc_bits).map_err(|e| e.to_string())?;
    let starved = Adc::new(adc_bits.saturating_sub(2).max(1)).map_err(|e| e.to_string())?;
    mapped
        .matvec_codes_batch(&inputs, n_inputs, &adc)
        .map_err(|e| e.to_string())?;
    mapped
        .matvec_codes_batch(&inputs, n_inputs, &starved)
        .map_err(|e| e.to_string())?;

    // Fault the mapped layer and repair with one spare column per tile.
    let model = FaultModel::from_overall_rate(0.05).map_err(|e| e.to_string())?;
    let map = LayerFaultMap::sample(&mapped, &model, &mut rng);
    repair::apply_with_spares(&mut mapped, &map, 1);

    // Compile the pruned network into a crossbar execution program and
    // stream two test samples through it so the `program.*` metrics are
    // populated (the compile/run counters and the workspace gauge).
    let compiled = CompiledModel::compile(&net, xbar, &CompileOptions::default())
        .map_err(|e| e.to_string())?;
    let (images, _labels) = data.test_batch(&[0, 1]).map_err(|e| e.to_string())?;
    let mut ws = BatchWorkspace::new();
    compiled
        .run_batch(&images, &mut ws)
        .map_err(|e| e.to_string())?;

    // Degraded-mode serving instrumentation: a second instance of the
    // same program under heavy IR drop + read noise, health-checked
    // against canary probes and pushed up the repair escalation ladder.
    // All serial — the `serve.health.*` gauges are last-write-wins.
    let nonideal = CompileOptions {
        adc_bits: None,
        faults: None,
        non_ideal: Some(NonIdealPolicy {
            ir: Some(IrDropModel::with_wire_resistance(2.0).map_err(|e| e.to_string())?),
            noise: Some(ReadNoise::new(0.5).map_err(|e| e.to_string())?),
            seed,
        }),
    };
    let noisy = CompiledModel::compile(&net, xbar, &nonideal).map_err(|e| e.to_string())?;
    let probes = CanaryProbes::sample(&data, 8, seed, &compiled).map_err(|e| e.to_string())?;
    let mut monitor =
        HealthMonitor::new(probes, DriftThresholds::default()).map_err(|e| e.to_string())?;
    let check = monitor.check(&noisy, &mut ws).map_err(|e| e.to_string())?;
    check.publish();
    let policy = EscalationPolicy::default();
    let mut esc_rng = SeededRng::new(seed ^ 0x5EC0);
    pipeline
        .escalate_repair(
            &mut net,
            &data,
            HealthState::Degraded,
            &model,
            seed,
            &nonideal,
            &policy,
            &mut esc_rng,
        )
        .map_err(|e| e.to_string())?;
    // An impossible ADC width exhausts the bounded retry loop, so the
    // retry counter and the typed exhaustion error are both exercised.
    let impossible = CompileOptions {
        adc_bits: Some(0),
        ..nonideal
    };
    match pipeline.escalate_repair(
        &mut net,
        &data,
        HealthState::Degraded,
        &model,
        seed,
        &impossible,
        &policy,
        &mut esc_rng,
    ) {
        Err(TinyAdcError::RepairExhausted { .. }) => {}
        other => {
            return Err(format!(
                "expected repair exhaustion from a zero-width ADC, got {other:?}"
            ))
        }
    }

    // Registry front-end instrumentation: both compiled instances become
    // resident tenants behind one shared admission queue, driven through
    // an unknown-tag rejection, a size flush, a deadline flush and a
    // zero-drop hot-swap so every `registry.*` / `serve.shard.*` metric
    // fires. Virtual time only — values depend on `seed`, not threads.
    let vol: usize = compiled.input_dims().iter().product();
    let samples = images.as_slice();
    let mut registry = ModelRegistry::new();
    registry
        .insert("net@clean", compiled)
        .map_err(|e| e.to_string())?;
    registry
        .insert("net@noisy", noisy)
        .map_err(|e| e.to_string())?;
    let serve_cfg = ServeConfig {
        queue_depth: 8,
        max_batch: 2,
        flush_deadline: 4,
        ring_slots: 1,
        service: ServiceModel::default(),
    };
    let mut server = RegistryServer::new(registry, serve_cfg).map_err(|e| e.to_string())?;
    if server.offer("net@ghost", &samples[..vol]).is_ok() {
        return Err("an unknown tag was admitted by the registry".into());
    }
    server
        .offer("net@clean", &samples[..vol])
        .map_err(|e| e.to_string())?;
    server
        .offer("net@clean", &samples[vol..2 * vol])
        .map_err(|e| e.to_string())?;
    // Two queued requests reach `max_batch`: a size flush.
    server.advance_to(1).map_err(|e| e.to_string())?;
    server
        .offer("net@noisy", &samples[..vol])
        .map_err(|e| e.to_string())?;
    // One queued request ages out at 1 + flush_deadline: a deadline flush.
    server.advance_to(5).map_err(|e| e.to_string())?;
    // Hot-swap the noisy tenant to a freshly compiled clean program while
    // its batch is still in flight — it must finish on the old program.
    let swap = CompiledModel::compile(&net, xbar, &CompileOptions::default())
        .map_err(|e| e.to_string())?;
    server
        .promote("net@noisy", swap)
        .map_err(|e| e.to_string())?;
    server.finish().map_err(|e| e.to_string())?;
    let mut served = 0u64;
    server.drain(|_| served += 1);
    if served != 3 {
        return Err(format!(
            "registry replay served {served} of 3 admitted requests"
        ));
    }

    let metrics = MetricsSnapshot::capture();
    let via_json =
        MetricsSnapshot::from_json(&metrics.to_json()).map_err(|e| format!("json: {e}"))?;
    let via_csv = MetricsSnapshot::from_csv(&metrics.to_csv()).map_err(|e| format!("csv: {e}"))?;
    if via_json != metrics || via_csv != metrics {
        return Err("metric snapshot failed its serialisation round-trip".into());
    }
    let manifest = RunManifest::new(
        &format!("{:?}", pipeline.config()),
        seed,
        tinyadc_par::current_threads(),
    );
    let rollup_json = rollup(&metrics, adc_bits)?;
    Ok(ExampleReport {
        manifest,
        metrics,
        rollup_json,
    })
}

/// Energy/latency roll-up from the observability counter stream: the
/// measured `xbar.*` events priced by the `tinyadc-hw` models, as JSON.
fn rollup(metrics: &MetricsSnapshot, adc_bits: u32) -> Result<String> {
    let counts = ActivityCounts::from_snapshot(metrics);
    let energy = EnergyModel::default()
        .energy(&counts, adc_bits)
        .map_err(|e| e.to_string())?;
    let latency = LatencyModel::default();
    let matvecs = metrics.counter("xbar.matvecs").unwrap_or(0);
    let mvm_latency_s = latency.mvm_latency_s(adc_bits);
    let adc_fraction = energy.adc_fraction();
    let (adc_nj, dac_nj, array_nj, shift_add_nj, total_nj) = (
        energy.adc_nj,
        energy.dac_nj,
        energy.array_nj,
        energy.shift_add_nj,
        energy.total_nj(),
    );
    let runtime_s = mvm_latency_s * matvecs as f64;
    Ok(format!(
        "{{\n  \"adc_bits\": {adc_bits},\n  \"matvecs\": {matvecs},\n  \
         \"energy_nj\": {{\"adc\": {adc_nj}, \"dac\": {dac_nj}, \"array\": {array_nj}, \
         \"shift_add\": {shift_add_nj}, \"total\": {total_nj}}},\n  \
         \"adc_energy_fraction\": {adc_fraction},\n  \
         \"mvm_latency_s\": {mvm_latency_s},\n  \"modeled_runtime_s\": {runtime_s}\n}}"
    ))
}

fn cmd_report(args: &Args) -> Result<String> {
    let seed: u64 = args.get_or("seed", 2021)?;
    let report = example_report(seed)?;
    let mut out = format!(
        "== run manifest ==\n{}\n\n== metrics ==\n{}\n\n== hardware-event roll-up ==\n{}\n",
        report.manifest.to_json(),
        report.metrics.to_json(),
        report.rollup_json,
    );
    if let Some(path) = args.get("metrics-csv") {
        std::fs::write(path, report.metrics.to_csv()).map_err(|e| e.to_string())?;
        out.push_str(&format!("wrote metrics CSV to {path}\n"));
    }
    out.push_str("snapshot JSON/CSV round-trip: OK\n");
    Ok(out)
}

/// Compile-once/run-many inference: compiles the network into a
/// [`CompiledModel`], prints the program summary, and evaluates crossbar
/// test accuracy under the selected [`Executor`]s.
fn cmd_infer(args: &Args) -> Result<String> {
    let executor = args.get("executor").unwrap_or("both");
    let (run_engine, run_datapath) = match executor {
        "engine" => (true, false),
        "datapath" => (false, true),
        "both" => (true, true),
        other => {
            return Err(format!(
                "unknown executor `{other}` (use engine|datapath|both)"
            ))
        }
    };
    let (pipeline, data, mut rng, mut net, float_accuracy) = if args.quick() {
        let seed: u64 = args.get_or("seed", 7)?;
        let mut rng = SeededRng::new(seed);
        let data = SyntheticImageDataset::generate(DatasetTier::Tier1Cifar10Like, 60, 30, &mut rng)
            .map_err(|e| e.to_string())?;
        let pipeline = Pipeline::new(PipelineConfig::quick_test());
        let trained = pipeline
            .pretrain(&data, &mut rng)
            .map_err(|e| e.to_string())?;
        let net = pipeline
            .restore(&data, &trained, &mut rng)
            .map_err(|e| e.to_string())?;
        (pipeline, data, rng, net, trained.accuracy)
    } else {
        let (pipeline, data, mut rng) = pipeline_of(args)?;
        let mut net = if let Some(path) = args.get("in") {
            load_into(&pipeline, &data, path, &mut rng)?
        } else {
            let trained = pipeline
                .pretrain(&data, &mut rng)
                .map_err(|e| e.to_string())?;
            pipeline
                .restore(&data, &trained, &mut rng)
                .map_err(|e| e.to_string())?
        };
        let accuracy = evaluate_top_k(&mut net, &data, 1, 64)
            .map_err(|e| e.to_string())?
            .value();
        (pipeline, data, rng, net, accuracy)
    };

    let compiled = CompiledModel::compile(&net, pipeline.config().xbar, &CompileOptions::default())
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "compiled `{}` for the crossbar datapath: {} steps, {} crossbar layers, \
         {} blocks, max ADC {} bits\n",
        compiled.name(),
        compiled.step_count(),
        compiled.crossbar_layers().len(),
        compiled.total_blocks(),
        compiled.max_adc_bits(),
    );
    let mut table = TextTable::new(&["Layer", "Blocks", "ADC bits"]);
    for layer in compiled.crossbar_layers() {
        table.row_owned(vec![
            layer.name.clone(),
            layer.blocks.to_string(),
            layer.adc_bits.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "float accuracy: {:.2} %\n",
        float_accuracy * 100.0
    ));
    if run_engine {
        let acc = pipeline
            .crossbar_accuracy(&mut net, &data, Executor::WeightDomain, &mut rng)
            .map_err(|e| e.to_string())?;
        out.push_str(&format!("engine (weight-domain) accuracy: {acc:.4}\n"));
    }
    if run_datapath {
        let acc = pipeline
            .crossbar_accuracy(&mut net, &data, Executor::Datapath, &mut rng)
            .map_err(|e| e.to_string())?;
        out.push_str(&format!("datapath (bit-serial) accuracy: {acc:.4}\n"));
    }
    Ok(out)
}

fn cmd_adc(args: &Args) -> Result<String> {
    let baseline: u32 = args.get_or("bits", 9)?;
    let model = SarAdcModel::default();
    let mut table = TextTable::new(&["Bits", "Power (mW)", "Area (mm^2)", "vs baseline power"]);
    for bits in 1..=baseline.max(2) {
        table.row_owned(vec![
            bits.to_string(),
            format!("{:.4}", model.power_mw(bits)),
            format!("{:.6}", model.area_mm2(bits)),
            format!("{:.3}", model.power_ratio(bits, baseline)),
        ]);
    }
    Ok(table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_owned)).unwrap()
    }

    #[test]
    fn unknown_command_shows_usage() {
        let err = run(&args("frobnicate")).unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&args("help")).unwrap();
        assert!(out.contains("tinyadc"));
        assert!(out.contains("prune"));
    }

    #[test]
    fn adc_command_is_pure() {
        let out = run(&args("adc --bits 9")).unwrap();
        assert!(out.contains("Bits"));
        assert!(out.lines().count() > 9);
    }

    #[test]
    fn fault_option_parsers() {
        let a = args("faults --rates 0.05,0.15 --strategies none,spares,retrain --spares 3");
        assert_eq!(parse_rates(&a).unwrap(), vec![0.05, 0.15]);
        assert_eq!(
            parse_strategies(&a, 3).unwrap(),
            vec![
                Mitigation::None,
                Mitigation::Spares { per_tile: 3 },
                Mitigation::Retrain
            ]
        );
        let a = args("faults --rate 0.2");
        assert_eq!(parse_rates(&a).unwrap(), vec![0.2]);
        assert_eq!(parse_strategies(&a, 2).unwrap(), vec![Mitigation::None]);
        assert!(parse_rates(&args("faults --rates x")).is_err());
        assert!(parse_strategies(&args("faults --strategies bogus"), 2).is_err());
    }

    #[test]
    fn tier_and_model_validation() {
        assert!(tier_of(&args("x --tier cifar10")).is_ok());
        assert!(tier_of(&args("x --tier mnist")).is_err());
        assert!(model_of(&args("x --model vgg16")).is_ok());
        assert!(model_of(&args("x --model alexnet")).is_err());
    }

    #[test]
    fn model_subcommand_grammar() {
        // `model` takes save|load, nothing else; `save` demands --out
        // and `load` demands --in before any training work starts.
        assert!(run(&args("model")).unwrap_err().contains("save|load"));
        assert!(run(&args("model prune"))
            .unwrap_err()
            .contains("unknown model action"));
        assert!(run(&args("model save --quick 1"))
            .unwrap_err()
            .contains("--out"));
        assert!(run(&args("model load")).unwrap_err().contains("--in"));
        assert!(run(&args("bench frobnicate"))
            .unwrap_err()
            .contains("serve|registry"));
    }

    #[test]
    fn model_save_then_load_round_trips_and_digests_agree() {
        let dir = std::env::temp_dir().join("tinyadc_cli_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quick.tadp");
        let saved = run(&args(&format!(
            "model save --quick 1 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(saved.contains("verified byte- and bit-identical"));
        let digest_line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("output digest"))
                .expect("digest line")
                .to_owned()
        };
        let loaded = run(&args(&format!("model load --in {}", path.display()))).unwrap();
        assert!(loaded.contains("program `"));
        assert_eq!(digest_line(&saved), digest_line(&loaded));
    }

    #[test]
    fn report_emits_manifest_metrics_and_rollup() {
        let dir = std::env::temp_dir().join("tinyadc_cli_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let csv = dir.join("metrics.csv");
        let out = run(&args(&format!(
            "report --seed 3 --trace {} --metrics-csv {}",
            trace.display(),
            csv.display()
        )))
        .unwrap();
        assert!(out.contains("run manifest"), "{out}");
        assert!(out.contains("\"seed\": 3"), "{out}");
        assert!(out.contains("xbar.matvecs"), "{out}");
        assert!(out.contains("xbar.adc.conversions"), "{out}");
        assert!(out.contains("prune.cp.projections"), "{out}");
        assert!(out.contains("\"adc_bits\""), "{out}");
        assert!(out.contains("round-trip: OK"), "{out}");
        // The exported trace is valid JSON and contains the report span.
        let trace_json = std::fs::read_to_string(&trace).unwrap();
        let parsed = tinyadc_obs::json::JsonValue::parse(&trace_json).unwrap();
        assert!(parsed.as_array().is_some_and(|a| !a.is_empty()));
        assert!(trace_json.contains("report.example"));
        // The CSV dump parses back into a snapshot.
        let csv_text = std::fs::read_to_string(&csv).unwrap();
        assert!(MetricsSnapshot::from_csv(&csv_text).is_ok());
        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn train_then_prune_then_audit_round_trip() {
        let dir = std::env::temp_dir().join("tinyadc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let dense = dir.join("dense.tadc");
        let pruned = dir.join("pruned.tadc");
        let common = "--tier cifar10 --model resnet18 --width 4 --train 60 --test 30 \
                      --epochs 1 --admm-epochs 1 --retrain-epochs 1 --rows 8 --cols 8";
        let out = run(&args(&format!("train {common} --out {}", dense.display()))).unwrap();
        assert!(out.contains("accuracy"));
        let out = run(&args(&format!(
            "prune {common} --in {} --rate 4 --out {}",
            dense.display(),
            pruned.display()
        )))
        .unwrap();
        assert!(out.contains("ADC -2 bits"), "{out}");
        let out = run(&args(&format!("audit {common} --in {}", pruned.display()))).unwrap();
        assert!(out.contains("baseline ADC: 5 bits"), "{out}");
        assert!(out.contains("-2 bits"), "{out}");
        let out = run(&args(&format!("cost {common} --in {}", pruned.display()))).unwrap();
        assert!(out.contains("ADC share"), "{out}");
        std::fs::remove_file(&dense).ok();
        std::fs::remove_file(&pruned).ok();
    }
}
