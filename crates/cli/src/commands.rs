//! Command implementations.
//!
//! Every command takes parsed [`Args`] and returns its human-readable
//! output as a `String` (printed by `main`), which keeps the commands
//! unit-testable.

use crate::{Args, Result};
use std::path::Path;
use tinyadc::config::ModelKind;
use tinyadc::report::TextTable;
use tinyadc::{Pipeline, PipelineConfig, TrainedModel};
use tinyadc_hw::adc::SarAdcModel;
use tinyadc_nn::data::{DatasetTier, SyntheticImageDataset};
use tinyadc_nn::serialize;
use tinyadc_nn::train::evaluate_top_k;
use tinyadc_prune::CrossbarShape;
use tinyadc_tensor::rng::SeededRng;
use tinyadc_xbar::engine::apply_crossbar_effects;
use tinyadc_xbar::fault::FaultModel;

/// Top-level dispatch; returns the command's printable output.
///
/// # Errors
///
/// Returns a user-facing message for unknown commands or failed options.
pub fn run(args: &Args) -> Result<String> {
    match args.command.as_str() {
        "train" => cmd_train(args),
        "prune" => cmd_prune(args),
        "audit" => cmd_audit(args),
        "cost" => cmd_cost(args),
        "faults" => cmd_faults(args),
        "adc" => cmd_adc(args),
        "help" => Ok(usage()),
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    }
}

/// The usage text.
pub fn usage() -> String {
    "tinyadc — peripheral-circuit-aware pruning for ReRAM accelerators\n\
     \n\
     USAGE: tinyadc <command> [--key value ...]\n\
     \n\
     COMMANDS\n\
     train   --tier cifar10|cifar100|imagenet --model resnet18|resnet50|vgg16\n\
     \x20       [--epochs N] [--width N] [--seed N] [--out FILE]\n\
     prune   --tier .. --model .. --in FILE --rate N [--filters F] [--out FILE]\n\
     audit   --tier .. --model .. --in FILE   per-layer crossbar/ADC audit\n\
     cost    --tier .. --model .. --in FILE   accelerator power/area vs baseline\n\
     faults  --tier .. --model .. --in FILE --rate R [--seeds N]\n\
     adc     [--bits N]                       ADC cost table\n\
     help                                     this text\n\
     \n\
     Common options: --rows/--cols (crossbar, default 16x8), --train/--test\n\
     (split sizes, default 800/300), --seed (default 2021)."
        .to_owned()
}

fn tier_of(args: &Args) -> Result<DatasetTier> {
    match args.required("tier")? {
        "cifar10" => Ok(DatasetTier::Tier1Cifar10Like),
        "cifar100" => Ok(DatasetTier::Tier2Cifar100Like),
        "imagenet" => Ok(DatasetTier::Tier3ImageNetLike),
        other => Err(format!(
            "unknown tier `{other}` (use cifar10|cifar100|imagenet)"
        )),
    }
}

fn model_of(args: &Args) -> Result<ModelKind> {
    match args.required("model")? {
        "resnet18" => Ok(ModelKind::ResNetS),
        "resnet50" => Ok(ModelKind::ResNetM),
        "vgg16" => Ok(ModelKind::VggS),
        other => Err(format!(
            "unknown model `{other}` (use resnet18|resnet50|vgg16)"
        )),
    }
}

fn pipeline_of(args: &Args) -> Result<(Pipeline, SyntheticImageDataset, SeededRng)> {
    let tier = tier_of(args)?;
    let model = model_of(args)?;
    let seed: u64 = args.get_or("seed", 2021)?;
    let train: usize = args.get_or("train", 800)?;
    let test: usize = args.get_or("test", 300)?;
    let rows: usize = args.get_or("rows", 16)?;
    let cols: usize = args.get_or("cols", 8)?;
    let width: usize = args.get_or("width", 8)?;
    let epochs: usize = args.get_or("epochs", 8)?;

    let mut cfg = PipelineConfig::experiment_default();
    cfg.model = model;
    cfg.model_width = width;
    cfg.xbar.shape = CrossbarShape::new(rows, cols).map_err(|e| e.to_string())?;
    cfg.pretrain.epochs = epochs;
    cfg.admm_train.epochs = args.get_or("admm-epochs", 4)?;
    cfg.retrain.epochs = args.get_or("retrain-epochs", 4)?;

    let mut rng = SeededRng::new(seed);
    let data =
        SyntheticImageDataset::generate(tier, train, test, &mut rng).map_err(|e| e.to_string())?;
    Ok((Pipeline::new(cfg), data, rng))
}

fn load_into(
    pipeline: &Pipeline,
    data: &SyntheticImageDataset,
    path: &str,
    rng: &mut SeededRng,
) -> Result<tinyadc_nn::Network> {
    let mut net = pipeline.build_model(data, rng).map_err(|e| e.to_string())?;
    serialize::load_network(&mut net, Path::new(path)).map_err(|e| e.to_string())?;
    Ok(net)
}

fn cmd_train(args: &Args) -> Result<String> {
    let (pipeline, data, mut rng) = pipeline_of(args)?;
    let trained = pipeline
        .pretrain(&data, &mut rng)
        .map_err(|e| e.to_string())?;
    let mut out = format!(
        "trained {} on {}: accuracy {:.2} %\n",
        pipeline.config().model,
        data.tier(),
        trained.accuracy * 100.0
    );
    if let Some(path) = args.get("out") {
        let mut net = pipeline
            .restore(&data, &trained, &mut rng)
            .map_err(|e| e.to_string())?;
        serialize::save_network(&mut net, Path::new(path)).map_err(|e| e.to_string())?;
        out.push_str(&format!("saved to {path}\n"));
    }
    Ok(out)
}

fn cmd_prune(args: &Args) -> Result<String> {
    let (pipeline, data, mut rng) = pipeline_of(args)?;
    let input = args.required("in")?.to_owned();
    let rate: usize = args.get_or("rate", 8)?;
    let filters: f64 = args.get_or("filters", 0.0)?;

    let mut dense = load_into(&pipeline, &data, &input, &mut rng)?;
    let accuracy = evaluate_top_k(&mut dense, &data, 1, 64)
        .map_err(|e| e.to_string())?
        .value();
    let trained = TrainedModel::from_network(&mut dense, accuracy);

    let (report, mut net) = if filters > 0.0 {
        pipeline
            .run_combined_with_network(&data, &trained, rate, filters, 0.0, &mut rng)
            .map_err(|e| e.to_string())?
    } else {
        pipeline
            .run_cp_with_network(&data, &trained, rate, &mut rng)
            .map_err(|e| e.to_string())?
    };
    let mut out = format!("{}\n", report.summary());
    if let Some(path) = args.get("out") {
        serialize::save_network(&mut net, Path::new(path)).map_err(|e| e.to_string())?;
        out.push_str(&format!("saved pruned model to {path}\n"));
    }
    Ok(out)
}

fn cmd_audit(args: &Args) -> Result<String> {
    let (pipeline, data, mut rng) = pipeline_of(args)?;
    let input = args.required("in")?.to_owned();
    let mut net = load_into(&pipeline, &data, &input, &mut rng)?;
    let skip = pipeline.skip_list(&mut net);
    let audit = tinyadc::NetworkAudit::of(&mut net, pipeline.config().xbar, &skip)
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "{}\nbaseline ADC: {} bits; worst-case reduction: -{} bits\n",
        audit.to_text_table().render(),
        audit.baseline_adc_bits,
        audit.adc_bits_reduction()
    ))
}

fn cmd_cost(args: &Args) -> Result<String> {
    let (pipeline, data, mut rng) = pipeline_of(args)?;
    let input = args.required("in")?.to_owned();
    let mut net = load_into(&pipeline, &data, &input, &mut rng)?;
    let skip = pipeline.skip_list(&mut net);
    let audit = tinyadc::NetworkAudit::of(&mut net, pipeline.config().xbar, &skip)
        .map_err(|e| e.to_string())?;
    let model = tinyadc_hw::accelerator::AcceleratorModel::default();
    let design = audit.to_design();
    let baseline = audit.to_baseline_design();
    let cost = model.cost(&design).map_err(|e| e.to_string())?;
    let normalized = model
        .normalized(&design, &baseline)
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "arrays: {}  tiles: {}\npower: {:.1} mW (x{:.3} of baseline)\narea: {:.4} mm^2 (x{:.3} of baseline)\nADC share: {:.0}% power, {:.0}% area\n",
        cost.arrays,
        cost.tiles,
        cost.power_mw,
        normalized.power,
        cost.area_mm2,
        normalized.area,
        cost.adc_power_fraction() * 100.0,
        cost.adc_area_fraction() * 100.0,
    ))
}

fn cmd_faults(args: &Args) -> Result<String> {
    let (pipeline, data, mut rng) = pipeline_of(args)?;
    let input = args.required("in")?.to_owned();
    let rate: f64 = args.get_or("rate", 0.10)?;
    let seeds: u64 = args.get_or("seeds", 3)?;

    let mut clean = load_into(&pipeline, &data, &input, &mut rng)?;
    let base = evaluate_top_k(&mut clean, &data, 1, 64)
        .map_err(|e| e.to_string())?
        .value();
    let snapshot = clean.snapshot();
    let model = FaultModel::from_overall_rate(rate).map_err(|e| e.to_string())?;
    let mut acc_sum = 0.0;
    for s in 0..seeds {
        let mut build_rng = SeededRng::new(1000 + s);
        let mut net = pipeline
            .build_model(&data, &mut build_rng)
            .map_err(|e| e.to_string())?;
        net.restore(&snapshot);
        let mut fault_rng = SeededRng::new(2000 + s);
        apply_crossbar_effects(
            &mut net,
            pipeline.config().xbar,
            Some(&model),
            &[],
            &mut fault_rng,
        )
        .map_err(|e| e.to_string())?;
        acc_sum += evaluate_top_k(&mut net, &data, 1, 64)
            .map_err(|e| e.to_string())?
            .value();
    }
    let faulted = acc_sum / seeds as f64;
    Ok(format!(
        "fault-free accuracy: {:.2} %\nat {:.0}% stuck-at faults ({} seeds): {:.2} % (drop {:.2} points)\n",
        base * 100.0,
        rate * 100.0,
        seeds,
        faulted * 100.0,
        (base - faulted) * 100.0
    ))
}

fn cmd_adc(args: &Args) -> Result<String> {
    let baseline: u32 = args.get_or("bits", 9)?;
    let model = SarAdcModel::default();
    let mut table = TextTable::new(&["Bits", "Power (mW)", "Area (mm^2)", "vs baseline power"]);
    for bits in 1..=baseline.max(2) {
        table.row_owned(vec![
            bits.to_string(),
            format!("{:.4}", model.power_mw(bits)),
            format!("{:.6}", model.area_mm2(bits)),
            format!("{:.3}", model.power_ratio(bits, baseline)),
        ]);
    }
    Ok(table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_owned)).unwrap()
    }

    #[test]
    fn unknown_command_shows_usage() {
        let err = run(&args("frobnicate")).unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&args("help")).unwrap();
        assert!(out.contains("tinyadc"));
        assert!(out.contains("prune"));
    }

    #[test]
    fn adc_command_is_pure() {
        let out = run(&args("adc --bits 9")).unwrap();
        assert!(out.contains("Bits"));
        assert!(out.lines().count() > 9);
    }

    #[test]
    fn tier_and_model_validation() {
        assert!(tier_of(&args("x --tier cifar10")).is_ok());
        assert!(tier_of(&args("x --tier mnist")).is_err());
        assert!(model_of(&args("x --model vgg16")).is_ok());
        assert!(model_of(&args("x --model alexnet")).is_err());
    }

    #[test]
    fn train_then_prune_then_audit_round_trip() {
        let dir = std::env::temp_dir().join("tinyadc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let dense = dir.join("dense.tadc");
        let pruned = dir.join("pruned.tadc");
        let common = "--tier cifar10 --model resnet18 --width 4 --train 60 --test 30 \
                      --epochs 1 --admm-epochs 1 --retrain-epochs 1 --rows 8 --cols 8";
        let out = run(&args(&format!("train {common} --out {}", dense.display()))).unwrap();
        assert!(out.contains("accuracy"));
        let out = run(&args(&format!(
            "prune {common} --in {} --rate 4 --out {}",
            dense.display(),
            pruned.display()
        )))
        .unwrap();
        assert!(out.contains("ADC -2 bits"), "{out}");
        let out = run(&args(&format!("audit {common} --in {}", pruned.display()))).unwrap();
        assert!(out.contains("baseline ADC: 5 bits"), "{out}");
        assert!(out.contains("-2 bits"), "{out}");
        let out = run(&args(&format!("cost {common} --in {}", pruned.display()))).unwrap();
        assert!(out.contains("ADC share"), "{out}");
        std::fs::remove_file(&dense).ok();
        std::fs::remove_file(&pruned).ok();
    }
}
