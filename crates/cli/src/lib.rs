//! # tinyadc-cli
//!
//! Command-line interface to the TinyADC framework: train, prune, audit,
//! cost and fault-test models from the shell without writing Rust.
//!
//! ```text
//! tinyadc train --tier cifar10 --model resnet18 --epochs 8 --out dense.tadc
//! tinyadc prune --tier cifar10 --model resnet18 --in dense.tadc --rate 8 --out pruned.tadc
//! tinyadc audit --tier cifar10 --model resnet18 --in pruned.tadc
//! tinyadc cost  --tier cifar10 --model resnet18 --in pruned.tadc
//! tinyadc faults --tier cifar10 --model resnet18 --in pruned.tadc --rate 0.10
//! tinyadc adc   --bits 9
//! ```
//!
//! The library half hosts the argument parser and command implementations
//! so they are unit-testable; the `tinyadc` binary is a thin `main`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Args, ParseArgsError};

/// CLI result alias (errors are rendered to the user as plain strings).
pub type Result<T> = std::result::Result<T, String>;
