//! A small `command [sub] --key value` argument parser (no external
//! dependencies).

use std::collections::HashMap;
use std::fmt;

/// Parsed command line: a subcommand, an optional second positional
/// (`tinyadc bench serve`), plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first positional token).
    pub command: String,
    /// The optional second positional token (`serve` in `bench serve`).
    /// Commands that take no sub-subcommand reject it at dispatch.
    pub sub: Option<String>,
    options: HashMap<String, String>,
}

/// Argument-parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseArgsError {
    /// No subcommand was supplied.
    MissingCommand,
    /// A `--flag` had no value.
    MissingValue(String),
    /// A token was not a `--key`.
    UnexpectedToken(String),
}

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingCommand => write!(f, "missing subcommand"),
            Self::MissingValue(k) => write!(f, "option --{k} needs a value"),
            Self::UnexpectedToken(t) => write!(f, "unexpected token `{t}`"),
        }
    }
}

impl std::error::Error for ParseArgsError {}

impl Args {
    /// Parses a token stream (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseArgsError`] for a missing subcommand, a flag
    /// without a value, or a third positional token.
    pub fn parse<I: IntoIterator<Item = String>>(
        tokens: I,
    ) -> std::result::Result<Self, ParseArgsError> {
        let mut iter = tokens.into_iter();
        let command = iter.next().ok_or(ParseArgsError::MissingCommand)?;
        if command.starts_with("--") {
            return Err(ParseArgsError::MissingCommand);
        }
        let mut sub = None;
        let mut options = HashMap::new();
        while let Some(token) = iter.next() {
            let Some(key) = token.strip_prefix("--") else {
                if sub.is_none() && options.is_empty() {
                    sub = Some(token);
                    continue;
                }
                return Err(ParseArgsError::UnexpectedToken(token));
            };
            let value = iter
                .next()
                .ok_or_else(|| ParseArgsError::MissingValue(key.to_owned()))?;
            options.insert(key.to_owned(), value);
        }
        Ok(Self {
            command,
            sub,
            options,
        })
    }

    /// Fails when the command was given a sub-subcommand it does not
    /// take (`tinyadc train oops`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the stray token.
    pub fn no_sub(&self) -> crate::Result<()> {
        match &self.sub {
            None => Ok(()),
            Some(s) => Err(format!(
                "`{}` takes no subcommand (got `{s}`)",
                self.command
            )),
        }
    }

    /// The raw value of an option, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing option.
    pub fn required(&self, key: &str) -> crate::Result<&str> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional typed option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> crate::Result<T> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: cannot parse `{v}`")),
        }
    }

    /// Whether the shared `--quick 1` smoke-test flag was given. Every
    /// command that offers a reduced self-contained profile keys off
    /// this one helper, so the flag's spelling cannot drift per-command.
    /// Presence is what counts — `--quick 0` still selects quick mode,
    /// matching the historical behaviour of every call site.
    pub fn quick(&self) -> bool {
        self.get("quick").is_some()
    }

    /// Number of parsed options.
    pub fn len(&self) -> usize {
        self.options.len()
    }

    /// `true` when no options were given.
    pub fn is_empty(&self) -> bool {
        self.options.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let a = Args::parse(toks("train --tier cifar10 --epochs 8")).unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get("tier"), Some("cifar10"));
        assert_eq!(a.get_or("epochs", 0usize).unwrap(), 8);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn missing_command_rejected() {
        assert_eq!(
            Args::parse(Vec::<String>::new()).unwrap_err(),
            ParseArgsError::MissingCommand
        );
        assert_eq!(
            Args::parse(toks("--tier cifar10")).unwrap_err(),
            ParseArgsError::MissingCommand
        );
    }

    #[test]
    fn missing_value_rejected() {
        assert_eq!(
            Args::parse(toks("train --tier")).unwrap_err(),
            ParseArgsError::MissingValue("tier".into())
        );
    }

    #[test]
    fn sub_positional_parsed_and_gated() {
        let a = Args::parse(toks("bench serve --quick 1")).unwrap();
        assert_eq!(a.command, "bench");
        assert_eq!(a.sub.as_deref(), Some("serve"));
        assert_eq!(a.get("quick"), Some("1"));
        assert!(a.no_sub().is_err());
        let plain = Args::parse(toks("train --tier cifar10")).unwrap();
        assert_eq!(plain.sub, None);
        assert!(plain.no_sub().is_ok());
    }

    #[test]
    fn stray_positional_rejected() {
        assert_eq!(
            Args::parse(toks("bench serve oops")).unwrap_err(),
            ParseArgsError::UnexpectedToken("oops".into())
        );
        assert_eq!(
            Args::parse(toks("train --tier cifar10 oops")).unwrap_err(),
            ParseArgsError::UnexpectedToken("oops".into())
        );
    }

    #[test]
    fn quick_flag_is_presence_keyed() {
        assert!(Args::parse(toks("faults --quick 1")).unwrap().quick());
        assert!(Args::parse(toks("faults --quick 0")).unwrap().quick());
        assert!(!Args::parse(toks("faults --rate 0.1")).unwrap().quick());
    }

    #[test]
    fn typed_defaults_and_errors() {
        let a = Args::parse(toks("x --n 4 --bad abc")).unwrap();
        assert_eq!(a.get_or("n", 1usize).unwrap(), 4);
        assert_eq!(a.get_or("missing", 7usize).unwrap(), 7);
        assert!(a.get_or::<usize>("bad", 0).is_err());
        assert!(a.required("n").is_ok());
        assert!(a.required("absent").is_err());
    }
}
