//! The `tinyadc` command-line tool; see `tinyadc help`.

use tinyadc_cli::{commands, Args};

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(tokens) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::usage());
            std::process::exit(2);
        }
    };
    match commands::run(&args) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
