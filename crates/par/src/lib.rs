//! Deterministic, std-only parallel execution for the workspace.
//!
//! Every hot kernel in the workspace (blocked matmul, im2col convolution,
//! CP projection, bit-serial crossbar MVM, per-sample training passes)
//! fans out through this crate. The design goal is *bitwise determinism*:
//! for a given input, the result is identical for every thread count —
//! including the serial path — so every numeric test in the workspace
//! doubles as a parallel-correctness oracle. Three rules make that hold:
//!
//! 1. **Disjoint writes.** [`for_each_chunk_mut`] hands each task a
//!    disjoint sub-slice of the output; each element is produced by
//!    exactly the same code as the serial loop, so values cannot differ.
//! 2. **Fixed chunk boundaries.** Reduction grain is chosen by the
//!    *caller* from the problem shape, never from the thread count.
//! 3. **Ordered merges.** [`map_reduce`] folds per-chunk partials in
//!    chunk-index order, so floating-point association is a function of
//!    the grain alone.
//!
//! # The persistent pool
//!
//! Parallel regions execute on a lazily spawned, process-wide pool of
//! parked worker threads (see the `pool` module) instead of spawning a
//! fresh `std::thread::scope` per call, so dispatch costs a condvar wake
//! rather than thread creation. Which thread runs which task is the one
//! thing the pool may vary — never the task boundaries or the merge
//! order, so the determinism contract is untouched. [`set_threads`]
//! resizes the pool (and `set_threads(0)` fully quiesces it — no pool
//! thread outlives the call, see [`pool_workers`]); at 1 thread every
//! helper degrades to a plain serial loop with no dispatch and no
//! synchronisation overhead.
//!
//! The pool exports scheduling-visible `par.pool.*` metrics
//! (`tasks_dispatched`, `worker_wakeups`, `queue_depth`) through
//! `tinyadc-obs`; their values are explicitly outside the bitwise
//! determinism contract (see `tinyadc_obs::sched_counter`).
//!
//! # Thread-count resolution
//!
//! See [`current_threads`]: [`set_threads`] override (checked on every
//! call) → `TINYADC_THREADS` env var (read **once** per process on first
//! use) → [`std::thread::available_parallelism`] (also resolved once).
//! When `TINYADC_THREADS` is **unset**, [`set_threads`] clamps its
//! argument to the detected host core count ([`host_cores`]) —
//! oversubscribing a small host only adds scheduler thrash, never speed,
//! and results are thread-count-invariant so the clamp is unobservable in
//! outputs. An explicit `TINYADC_THREADS` is an operator opt-in and
//! disables the clamp; [`set_threads_exact`] bypasses it
//! programmatically (the determinism test suites use it to genuinely
//! exercise more workers than cores).
//!
//! # Example
//!
//! ```
//! let mut squares = vec![0u64; 1000];
//! tinyadc_par::for_each_chunk_mut(&mut squares, 128, |chunk_index, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         let n = (chunk_index * 128 + i) as u64;
//!         *v = n * n;
//!     }
//! });
//! assert_eq!(squares[40], 1600);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod pool;

use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Programmatic override; 0 means "not set, use env/auto".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside worker threads so nested parallel calls (e.g. a
    /// per-patch map invoking per-column tile MVMs) degrade to serial
    /// instead of oversubscribing the machine with recursive dispatches.
    /// Harmless for results: every helper is thread-count-invariant.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Marks the current thread as a pool worker for its whole lifetime.
pub(crate) fn enter_worker_context() {
    IN_WORKER.with(|w| w.set(true));
}

/// Whether the current thread is executing inside a parallel region.
pub(crate) fn in_worker_context() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Below this many work items the dispatch cost dwarfs the win; run
/// serial. Thresholding never changes results — only where they are
/// computed.
const MIN_ITEMS_PER_THREAD: usize = 2;

/// Sets the global worker count and resizes the pool to match (`n`
/// participants = the caller plus `n - 1` pool workers; surplus workers
/// exit before this returns).
///
/// When `TINYADC_THREADS` is unset, `n` is clamped to [`host_cores`]:
/// more workers than cores only adds scheduler thrash (the
/// BENCH_parallel.json oversubscription regressions), and every helper is
/// thread-count-invariant, so the clamp can never change results. An
/// explicit `TINYADC_THREADS` is an operator opt-in that disables the
/// clamp; use [`set_threads_exact`] to bypass it programmatically.
///
/// `0` clears the override — thread count falls back to
/// `TINYADC_THREADS` / auto detection for subsequent calls — **and**
/// quiesces the pool entirely: after `set_threads(0)` returns,
/// [`pool_workers`] is `0` and no pool thread lingers. Workers respawn
/// lazily on the next parallel dispatch.
pub fn set_threads(n: usize) {
    let n = if n > 0 && env_threads().is_none() {
        n.min(host_cores())
    } else {
        n
    };
    set_threads_exact(n);
}

/// As [`set_threads`] but without the host-core clamp: the worker count
/// is taken verbatim even when it oversubscribes the host. Intended for
/// the determinism test suites, which deliberately run more workers than
/// cores to stress scheduling freedom; production code should prefer
/// [`set_threads`].
pub fn set_threads_exact(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
    pool::resize(n.saturating_sub(1));
}

/// The worker count parallel helpers will use right now.
///
/// Precedence: the [`set_threads`] override if one is live, else the
/// `TINYADC_THREADS` env var, else
/// [`std::thread::available_parallelism`], floored at 1. The env var and
/// the auto detection are resolved **once** per process on first use and
/// cached; mutating `TINYADC_THREADS` afterwards has no effect (use
/// [`set_threads`], which always wins and is re-read on every call).
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    default_threads()
}

/// Cached `TINYADC_THREADS` → `available_parallelism` fallback.
fn default_threads() -> usize {
    env_threads().unwrap_or_else(host_cores)
}

/// The `TINYADC_THREADS` env var as resolved **once** per process on
/// first use (`None` when unset, empty, or not a positive integer).
/// An explicit value is an operator opt-in: it wins over auto detection
/// and disables the [`set_threads`] host-core clamp.
pub fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("TINYADC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Host logical core count as detected **once** per process
/// ([`std::thread::available_parallelism`], floored at 1) — the
/// [`set_threads`] clamp ceiling when `TINYADC_THREADS` is unset.
pub fn host_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Live pool worker threads right now (parked or running); excludes the
/// calling thread. `0` after [`set_threads`]`(0)` — the basis of the
/// pool-shutdown leak check in `scripts/check.sh`.
pub fn pool_workers() -> usize {
    pool::workers()
}

/// How many workers to actually use for `tasks` independent tasks.
fn workers_for(tasks: usize) -> usize {
    metrics::touch();
    if in_worker_context() {
        return 1;
    }
    let t = current_threads()
        .min(tasks / MIN_ITEMS_PER_THREAD.max(1))
        .min(tasks);
    t.max(1)
}

/// Fans `tasks` out over the pool: the caller and up to `workers - 1`
/// pool threads pop from a shared queue until it drains. Each task owns
/// its output (disjoint `&mut` slices, index-addressed slots), so the
/// pop order — the only scheduling freedom — cannot affect results.
///
/// The first panic from any task is captured, the queue is drained to
/// fail fast, and the payload is rethrown on the caller once every
/// worker has detached, mirroring `std::thread::scope` semantics.
fn run_parallel<T, F>(tasks: Vec<T>, workers: usize, run: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    debug_assert!(workers > 1);
    metrics::TASKS_DISPATCHED.add(tasks.len() as u64);
    metrics::QUEUE_DEPTH.set(tasks.len() as f64);
    let queue = Mutex::new(tasks);
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let body = || {
        loop {
            let task = queue.lock().unwrap_or_else(|e| e.into_inner()).pop();
            let Some(task) = task else { break };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(task))) {
                let mut slot = panic_slot.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(payload);
                }
                drop(slot);
                // Fail fast: drop the remaining tasks so every
                // participant stops at its next pop.
                queue.lock().unwrap_or_else(|e| e.into_inner()).clear();
            }
        }
    };
    // The caller is a participant too; flag it so nested parallel calls
    // inside its tasks degrade to serial like they do on pool workers.
    enter_worker_context();
    pool::run(workers - 1, &body);
    IN_WORKER.with(|w| w.set(false));
    if let Some(payload) = panic_slot.into_inner().unwrap_or_else(|e| e.into_inner()) {
        resume_unwind(payload);
    }
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the last
/// may be shorter) and runs `f(chunk_index, chunk)` for every chunk,
/// distributing chunks over the pool.
///
/// Each chunk is a disjoint `&mut` sub-slice, so the result is bitwise
/// identical to running the chunks serially in order — for any thread
/// count.
///
/// # Panics
///
/// Panics if `chunk_len == 0` (via `chunks_mut`) or if `f` panics on any
/// worker (the first panic payload is rethrown on the caller).
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n_chunks = data.len().div_ceil(chunk_len.max(1));
    let workers = workers_for(n_chunks);
    if workers <= 1 {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }
    let tasks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    run_parallel(tasks, workers, |(ci, chunk)| f(ci, chunk));
}

/// Runs `f(i)` for `i in 0..n` and collects the results in index order.
///
/// Results are placed by index, so ordering is independent of scheduling.
pub fn map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers_for(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    // A few tasks per participant keeps the pool load-balanced when item
    // costs are uneven; slots are index-addressed so the split is
    // invisible in the results.
    let task_len = n.div_ceil((workers * 4).min(n));
    let tasks: Vec<(usize, &mut [Option<T>])> = out.chunks_mut(task_len).enumerate().collect();
    run_parallel(tasks, workers, |(t, slots)| {
        let base = t * task_len;
        for (j, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(base + j));
        }
    });
    out.into_iter()
        .map(|v| v.expect("every index filled"))
        .collect()
}

/// Splits `0..n_items` into ranges of `grain` items (fixed boundaries,
/// independent of thread count), maps every range with `map`, and folds
/// the partials **in range order** with `reduce`.
///
/// Because both the chunking and the merge order are functions of
/// `(n_items, grain)` alone, the result — floating point included — is
/// identical for every thread count. Callers that previously summed
/// element-by-element must adopt the chunked association as their
/// canonical (serial and parallel) result.
///
/// Returns `None` when `n_items == 0`.
pub fn map_reduce<T, M, R>(n_items: usize, grain: usize, map_fn: M, mut reduce: R) -> Option<T>
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    R: FnMut(T, T) -> T,
{
    if n_items == 0 {
        return None;
    }
    let grain = grain.max(1);
    let n_chunks = n_items.div_ceil(grain);
    let ranges = move |ci: usize| ci * grain..((ci + 1) * grain).min(n_items);
    let partials = map(n_chunks, |ci| map_fn(ranges(ci)));
    partials.into_iter().reduce(&mut reduce)
}

/// Chunked deterministic sum of `f(i)` over `0..n_items` in `f64`:
/// per-chunk serial accumulation, partials merged in chunk order.
pub fn sum_f64<F>(n_items: usize, grain: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    map_reduce(n_items, grain, |r| r.map(&f).sum::<f64>(), |a, b| a + b).unwrap_or(0.0)
}

/// A sensible chunk length for `n` items of roughly uniform cost: large
/// enough to amortise dispatch, derived only from `n` (never the thread
/// count) so boundaries are reproducible.
pub fn default_grain(n: usize) -> usize {
    // At most 64 chunks; at least 1 item each.
    n.div_ceil(64).max(1)
}

/// Work-aware chunk length for `n` items costing `cost_per_item` scalar
/// operations each (a *modeled, shape-derived* cost — e.g. the inner
/// dimension of a matvec or the popcount words a bit-serial column
/// touches — never a measured time).
///
/// Widens [`default_grain`] until one task carries enough work
/// (≈ 64 k scalar ops) to dwarf a pool dispatch, so feather-light items
/// batch up instead of thrashing the task queue, while heavy items keep
/// `default_grain`'s fan-out. Depends only on `(n, cost_per_item)`, so
/// chunk boundaries — and therefore results — are identical for every
/// thread count.
pub fn grain_for_cost(n: usize, cost_per_item: u64) -> usize {
    /// Scalar ops that amortise one queue pop + wakeup comfortably.
    const TARGET_OPS_PER_TASK: u64 = 1 << 16;
    let per = usize::try_from(TARGET_OPS_PER_TASK / cost_per_item.max(1)).unwrap_or(usize::MAX);
    per.max(default_grain(n)).clamp(1, n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pool, the override, and `pool_workers` are process-global;
    /// tests that assert on them must not interleave.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static GLOBAL: Mutex<()> = Mutex::new(());
        GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn chunked_mut_covers_every_element_once() {
        let _g = guard();
        let mut v = vec![0u32; 1003];
        for_each_chunk_mut(&mut v, 17, |ci, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x += (ci * 17 + j) as u32 + 1;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u32 + 1);
        }
    }

    #[test]
    fn map_preserves_index_order() {
        let _g = guard();
        let out = map(257, |i| i * i);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn map_reduce_is_thread_count_invariant() {
        let _g = guard();
        let eval = || {
            map_reduce(
                1000,
                37,
                |r| r.map(|i| (i as f64 + 0.1).sqrt()).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        set_threads_exact(1);
        let serial = eval();
        for t in [2, 3, 4, 7] {
            set_threads_exact(t);
            assert_eq!(serial.to_bits(), eval().to_bits(), "threads = {t}");
        }
        set_threads(0);
    }

    #[test]
    fn sum_f64_handles_empty_and_matches_manual() {
        let _g = guard();
        assert_eq!(sum_f64(0, 8, |_| 1.0), 0.0);
        let total = sum_f64(10, 3, |i| i as f64);
        assert_eq!(total, 45.0);
    }

    #[test]
    fn set_threads_roundtrip() {
        let _g = guard();
        set_threads_exact(3);
        assert_eq!(current_threads(), 3);
        set_threads(0);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn set_threads_clamps_to_host_cores_unless_env_overrides() {
        let _g = guard();
        let cores = host_cores();
        assert!(cores >= 1);
        set_threads(cores + 5);
        if env_threads().is_none() {
            // No operator opt-in: oversubscription is clamped away.
            assert_eq!(current_threads(), cores);
        } else {
            // Explicit TINYADC_THREADS disables the clamp entirely.
            assert_eq!(current_threads(), cores + 5);
        }
        // Requests at or under the core count pass through verbatim.
        set_threads(1);
        assert_eq!(current_threads(), 1);
        // The exact variant always bypasses the clamp.
        set_threads_exact(cores + 5);
        assert_eq!(current_threads(), cores + 5);
        set_threads(0);
    }

    #[test]
    fn default_grain_bounds() {
        assert_eq!(default_grain(0), 1);
        assert_eq!(default_grain(1), 1);
        assert_eq!(default_grain(64), 1);
        assert_eq!(default_grain(65), 2);
        assert!(default_grain(1_000_000) >= 15_000);
    }

    #[test]
    fn cost_aware_grain_batches_light_items_only() {
        // Heavy items: one per task (default_grain fan-out preserved).
        assert_eq!(grain_for_cost(32, 1 << 20), 1);
        // Feather-light items batch up to the ops target.
        assert_eq!(grain_for_cost(1 << 20, 1), 1 << 16);
        assert_eq!(grain_for_cost(100, 1), 100);
        assert_eq!(grain_for_cost(100, 1 << 10), 64);
        // Never zero, never beyond n.
        assert_eq!(grain_for_cost(0, 0), 1);
        assert!(grain_for_cost(7, 3) <= 7);
    }

    #[test]
    fn nested_calls_run_on_the_outer_worker_thread() {
        let _g = guard();
        set_threads_exact(4);
        let outer = map(8, |i| {
            let me = std::thread::current().id();
            let inner_ids = map(8, |_| std::thread::current().id());
            (i, inner_ids.iter().all(|&id| id == me))
        });
        set_threads(0);
        for (i, stayed) in outer {
            assert!(stayed, "nested map at {i} escaped its worker thread");
        }
    }

    #[test]
    fn parallel_results_match_serial_with_many_threads() {
        let _g = guard();
        let run = |threads: usize| {
            set_threads_exact(threads);
            let mut v = vec![0f32; 541];
            for_each_chunk_mut(&mut v, 13, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = ((ci * 13 + j) as f32).sin();
                }
            });
            set_threads(0);
            v
        };
        let base = run(1);
        for t in [2, 4, 7, 16] {
            assert_eq!(base, run(t), "threads = {t}");
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let _g = guard();
        set_threads_exact(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut v = vec![0u32; 100];
            for_each_chunk_mut(&mut v, 5, |ci, _chunk| {
                if ci == 7 {
                    panic!("boom at chunk 7");
                }
            });
        }));
        let payload = caught.expect_err("panic must propagate to the caller");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(msg.contains("boom"), "unexpected payload: {msg}");
        // The pool must still be fully usable after a propagated panic.
        let out = map(100, |i| i + 1);
        assert_eq!(out[99], 100);
        set_threads(0);
    }

    #[test]
    fn set_threads_resizes_under_load() {
        let _g = guard();
        set_threads_exact(4);
        let resizer = std::thread::spawn(|| {
            std::thread::sleep(std::time::Duration::from_millis(3));
            set_threads_exact(2);
        });
        let out = map(64, |i| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            i * 2
        });
        resizer.join().expect("resizer thread");
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        // set_threads_exact(2) leaves at most one helper alive.
        assert!(pool_workers() <= 1, "cap 1 exceeded: {}", pool_workers());
        set_threads(0);
    }

    #[test]
    fn shutdown_leaves_no_workers_and_pool_respawns() {
        let _g = guard();
        set_threads_exact(4);
        let _ = map(64, |i| i);
        assert!(pool_workers() >= 1, "dispatch at 4 threads spawned no one");
        set_threads(0);
        assert_eq!(pool_workers(), 0, "lingering workers after set_threads(0)");
        // Lazy respawn: the next dispatch works and re-grows on demand.
        set_threads_exact(3);
        let out = map(64, |i| i + 7);
        assert_eq!(out[10], 17);
        assert!(pool_workers() >= 1);
        set_threads(0);
        assert_eq!(pool_workers(), 0);
    }

    #[test]
    fn env_threads_are_cached_once() {
        let _g = guard();
        set_threads(0);
        // Whatever the first resolution saw is pinned for the process:
        // two reads agree even if the environment were to change between
        // them.
        assert_eq!(current_threads(), current_threads());
        assert!(current_threads() >= 1);
    }
}
