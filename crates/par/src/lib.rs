//! Deterministic, dependency-free parallel execution for the workspace.
//!
//! Every hot kernel in the workspace (blocked matmul, im2col convolution,
//! CP projection, bit-serial crossbar MVM, per-sample training passes)
//! fans out through this crate. The design goal is *bitwise determinism*:
//! for a given input, the result is identical for every thread count —
//! including the serial path — so every numeric test in the workspace
//! doubles as a parallel-correctness oracle. Three rules make that hold:
//!
//! 1. **Disjoint writes.** [`for_each_chunk_mut`] hands each task a
//!    disjoint sub-slice of the output; each element is produced by
//!    exactly the same code as the serial loop, so values cannot differ.
//! 2. **Fixed chunk boundaries.** Reduction grain is chosen by the
//!    *caller* from the problem shape, never from the thread count.
//! 3. **Ordered merges.** [`map_reduce`] folds per-chunk partials in
//!    chunk-index order, so floating-point association is a function of
//!    the grain alone.
//!
//! Thread count resolves as: [`set_threads`] override → `TINYADC_THREADS`
//! env var → [`std::thread::available_parallelism`]. At 1 thread every
//! helper degrades to a plain serial loop with no spawning and no
//! synchronisation overhead.
//!
//! # Example
//!
//! ```
//! let mut squares = vec![0u64; 1000];
//! tinyadc_par::for_each_chunk_mut(&mut squares, 128, |chunk_index, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         let n = (chunk_index * 128 + i) as u64;
//!         *v = n * n;
//!     }
//! });
//! assert_eq!(squares[40], 1600);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Programmatic override; 0 means "not set, use env/auto".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set inside worker threads so nested parallel calls (e.g. a
    /// per-patch map invoking per-column tile MVMs) degrade to serial
    /// instead of oversubscribing the machine with recursive spawns.
    /// Harmless for results: every helper is thread-count-invariant.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Below this many work items the spawn cost dwarfs the win; run serial.
/// Thresholding never changes results — only where they are computed.
const MIN_ITEMS_PER_THREAD: usize = 2;

/// Sets the global worker count. `0` clears the override, returning to
/// `TINYADC_THREADS` / auto detection. Takes effect for subsequent calls.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count parallel helpers will use right now:
/// [`set_threads`] override, else `TINYADC_THREADS`, else
/// [`std::thread::available_parallelism`], floored at 1.
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("TINYADC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How many workers to actually launch for `tasks` independent tasks.
fn workers_for(tasks: usize) -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let t = current_threads()
        .min(tasks / MIN_ITEMS_PER_THREAD.max(1))
        .min(tasks);
    t.max(1)
}

/// Splits `data` into consecutive chunks of `chunk_len` elements (the last
/// may be shorter) and runs `f(chunk_index, chunk)` for every chunk,
/// distributing chunks over the worker threads.
///
/// Each chunk is a disjoint `&mut` sub-slice, so the result is bitwise
/// identical to running the chunks serially in order — for any thread
/// count.
///
/// # Panics
///
/// Panics if `chunk_len == 0` (via `chunks_mut`) or if `f` panics on any
/// worker.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n_chunks = data.len().div_ceil(chunk_len.max(1));
    let workers = workers_for(n_chunks);
    if workers <= 1 {
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(ci, chunk);
        }
        return;
    }
    // Contiguous runs of chunks per worker keep memory access streaming.
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let per_worker = chunks.len().div_ceil(workers);
    let mut groups: Vec<Vec<(usize, &mut [T])>> = Vec::with_capacity(workers);
    let mut rest = chunks;
    while !rest.is_empty() {
        let take = per_worker.min(rest.len());
        let tail = rest.split_off(take);
        groups.push(rest);
        rest = tail;
    }
    std::thread::scope(|s| {
        for group in groups {
            let f = &f;
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (ci, chunk) in group {
                    f(ci, chunk);
                }
            });
        }
    });
}

/// Runs `f(i)` for `i in 0..n` and collects the results in index order.
///
/// Results are placed by index, so ordering is independent of scheduling.
pub fn map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers_for(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let per_worker = n.div_ceil(workers);
    std::thread::scope(|s| {
        for (w, slots) in out.chunks_mut(per_worker).enumerate() {
            let base = w * per_worker;
            let f = &f;
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(base + j));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("every index filled"))
        .collect()
}

/// Splits `0..n_items` into ranges of `grain` items (fixed boundaries,
/// independent of thread count), maps every range with `map`, and folds
/// the partials **in range order** with `reduce`.
///
/// Because both the chunking and the merge order are functions of
/// `(n_items, grain)` alone, the result — floating point included — is
/// identical for every thread count. Callers that previously summed
/// element-by-element must adopt the chunked association as their
/// canonical (serial and parallel) result.
///
/// Returns `None` when `n_items == 0`.
pub fn map_reduce<T, M, R>(n_items: usize, grain: usize, map_fn: M, mut reduce: R) -> Option<T>
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    R: FnMut(T, T) -> T,
{
    if n_items == 0 {
        return None;
    }
    let grain = grain.max(1);
    let n_chunks = n_items.div_ceil(grain);
    let ranges = move |ci: usize| ci * grain..((ci + 1) * grain).min(n_items);
    let partials = map(n_chunks, |ci| map_fn(ranges(ci)));
    partials.into_iter().reduce(&mut reduce)
}

/// Chunked deterministic sum of `f(i)` over `0..n_items` in `f64`:
/// per-chunk serial accumulation, partials merged in chunk order.
pub fn sum_f64<F>(n_items: usize, grain: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    map_reduce(n_items, grain, |r| r.map(&f).sum::<f64>(), |a, b| a + b).unwrap_or(0.0)
}

/// A sensible chunk length for `n` items of roughly uniform cost: large
/// enough to amortise spawning, derived only from `n` (never the thread
/// count) so boundaries are reproducible.
pub fn default_grain(n: usize) -> usize {
    // At most 64 chunks; at least 1 item each.
    n.div_ceil(64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_mut_covers_every_element_once() {
        let mut v = vec![0u32; 1003];
        for_each_chunk_mut(&mut v, 17, |ci, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x += (ci * 17 + j) as u32 + 1;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u32 + 1);
        }
    }

    #[test]
    fn map_preserves_index_order() {
        let out = map(257, |i| i * i);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn map_reduce_is_thread_count_invariant() {
        let eval = || {
            map_reduce(
                1000,
                37,
                |r| r.map(|i| (i as f64 + 0.1).sqrt()).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        set_threads(1);
        let serial = eval();
        for t in [2, 3, 4, 7] {
            set_threads(t);
            assert_eq!(serial.to_bits(), eval().to_bits(), "threads = {t}");
        }
        set_threads(0);
    }

    #[test]
    fn sum_f64_handles_empty_and_matches_manual() {
        assert_eq!(sum_f64(0, 8, |_| 1.0), 0.0);
        let total = sum_f64(10, 3, |i| i as f64);
        assert_eq!(total, 45.0);
    }

    #[test]
    fn set_threads_roundtrip() {
        set_threads(3);
        assert_eq!(current_threads(), 3);
        set_threads(0);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn default_grain_bounds() {
        assert_eq!(default_grain(0), 1);
        assert_eq!(default_grain(1), 1);
        assert_eq!(default_grain(64), 1);
        assert_eq!(default_grain(65), 2);
        assert!(default_grain(1_000_000) >= 15_000);
    }

    #[test]
    fn nested_calls_run_on_the_outer_worker_thread() {
        set_threads(4);
        let outer = map(8, |i| {
            let me = std::thread::current().id();
            let inner_ids = map(8, |_| std::thread::current().id());
            (i, inner_ids.iter().all(|&id| id == me))
        });
        set_threads(0);
        for (i, stayed) in outer {
            assert!(stayed, "nested map at {i} escaped its worker thread");
        }
    }

    #[test]
    fn parallel_results_match_serial_with_many_threads() {
        let run = |threads: usize| {
            set_threads(threads);
            let mut v = vec![0f32; 541];
            for_each_chunk_mut(&mut v, 13, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = ((ci * 13 + j) as f32).sin();
                }
            });
            set_threads(0);
            v
        };
        let base = run(1);
        for t in [2, 4, 7, 16] {
            assert_eq!(base, run(t), "threads = {t}");
        }
    }
}
