//! The persistent worker pool behind every parallel helper.
//!
//! Workers are plain `std::thread`s parked on a condvar; a parallel
//! region posts one type-erased *job* (a `Fn()` body that pulls tasks
//! from a caller-owned queue), wakes the workers, runs the body itself,
//! and then waits until every attached worker has detached before
//! returning. Threads are spawned lazily on first dispatch and resized
//! (or fully quiesced) by [`resize`].
//!
//! # Why one job at a time
//!
//! Nested parallel calls already degrade to serial (see `IN_WORKER` in
//! the crate root), so the only way two jobs could contend is two
//! independent *user* threads entering parallel regions concurrently.
//! In that case the second caller simply runs its body inline — results
//! are identical by the determinism contract, and the pool stays free
//! of queueing/fairness machinery.
//!
//! # Soundness of the lifetime erasure
//!
//! The job body borrows the caller's stack (task queue, panic slot,
//! output slices), but workers are `'static` threads, so [`run`] erases
//! the body's lifetime. The attach/detach protocol makes this sound:
//!
//! * a worker obtains the body reference **only** under the pool mutex,
//!   and only while `state.job` is `Some`, incrementing `attached`;
//! * the caller clears `state.job` after finishing its own share, then
//!   blocks until `attached == 0`;
//!
//! so no worker can observe the body (or anything it borrows) after
//! [`run`] returns, and the borrow outlives every use.

use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

use crate::metrics::WORKER_WAKEUPS;

/// A type-erased parallel region body with its dispatch generation.
///
/// `epoch` lets a worker that finishes early (empty queue) recognise
/// that the still-posted job is the one it already ran, instead of
/// spinning on it until the caller clears the slot.
#[derive(Clone, Copy)]
struct Job {
    body: &'static (dyn Fn() + Sync),
    epoch: u64,
}

#[derive(Default)]
struct State {
    /// The in-flight job, if any. Readable only under the pool mutex.
    job: Option<Job>,
    /// Dispatch generation counter; bumped once per posted job.
    epoch: u64,
    /// Workers currently executing the posted job's body.
    attached: usize,
    /// Live worker threads (parked or running).
    workers: usize,
    /// Worker-count ceiling; surplus workers exit on their next wakeup.
    cap: usize,
}

struct Pool {
    state: Mutex<State>,
    /// Workers wait here for a job (or a cap shrink).
    work_cv: Condvar,
    /// The caller waits here for `attached == 0`; [`resize`] waits here
    /// for surplus workers to exit.
    done_cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State::default()),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    })
}

fn lock(pool: &Pool) -> MutexGuard<'_, State> {
    // Worker bodies catch panics before they can poison the mutex, but
    // recover defensively anyway: the state itself is always consistent.
    pool.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `body` on up to `helpers` pool workers concurrently with the
/// caller (who participates and always runs `body` itself).
///
/// `body` must be safe to execute from several threads at once and must
/// do its own task distribution (the crate helpers share a mutex-guarded
/// task queue). If the pool is already executing another caller's job,
/// `body` runs inline on the caller only — by the determinism contract
/// the result is the same, only the wall-clock differs.
pub(crate) fn run(helpers: usize, body: &(dyn Fn() + Sync)) {
    let pool = pool();
    {
        let mut st = lock(pool);
        if st.job.is_some() {
            drop(st);
            body();
            return;
        }
        st.cap = st.cap.max(helpers);
        while st.workers < helpers.min(st.cap) {
            if spawn_worker().is_err() {
                break;
            }
            st.workers += 1;
        }
        st.epoch += 1;
        st.job = Some(Job {
            body: erase(body),
            epoch: st.epoch,
        });
        pool.work_cv.notify_all();
    }
    body();
    let mut st = lock(pool);
    st.job = None;
    while st.attached > 0 {
        st = pool.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// Erases the body's borrow so it can sit in the `'static` job slot.
///
/// SAFETY: callers uphold the attach/detach protocol documented at the
/// module level — the reference is cleared from `state.job` and every
/// attached worker has detached before the true lifetime ends, so the
/// `'static` is never actually relied upon past the borrow.
#[allow(unsafe_code)]
fn erase(body: &(dyn Fn() + Sync)) -> &'static (dyn Fn() + Sync) {
    unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body) }
}

fn spawn_worker() -> std::io::Result<()> {
    std::thread::Builder::new()
        .name("tinyadc-par-worker".into())
        .spawn(worker_loop)
        .map(drop)
}

fn worker_loop() {
    // Everything a pool thread runs is worker context: nested parallel
    // calls inside a task degrade to serial instead of re-entering the
    // pool.
    crate::enter_worker_context();
    let pool = pool();
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(pool);
            loop {
                if st.workers > st.cap {
                    st.workers -= 1;
                    pool.done_cv.notify_all();
                    return;
                }
                match st.job {
                    Some(job) if job.epoch != last_epoch => {
                        last_epoch = job.epoch;
                        st.attached += 1;
                        break job;
                    }
                    _ => {
                        st = pool.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                        WORKER_WAKEUPS.inc();
                    }
                }
            }
        };
        (job.body)();
        let mut st = lock(pool);
        st.attached -= 1;
        if st.attached == 0 {
            pool.done_cv.notify_all();
        }
    }
}

/// Sets the worker-count ceiling and blocks until surplus workers have
/// exited (so `cap == 0` guarantees no pool thread outlives the call).
///
/// Growth stays lazy — new workers appear on the next dispatch that
/// wants them, not here. When invoked from inside a worker (a task
/// calling `set_threads`) the shrink is asynchronous instead: blocking
/// would deadlock on the calling worker's own exit.
pub(crate) fn resize(cap: usize) {
    let pool = pool();
    let mut st = lock(pool);
    st.cap = cap;
    if st.workers > cap {
        pool.work_cv.notify_all();
        if crate::in_worker_context() {
            return;
        }
        while st.workers > cap {
            st = pool.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Live pool worker threads right now (parked or running).
pub(crate) fn workers() -> usize {
    lock(pool()).workers
}
