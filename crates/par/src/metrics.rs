//! Pool observability: scheduling-visible `par.pool.*` metrics.
//!
//! These are registered through [`tinyadc_obs::sched_counter`] /
//! [`tinyadc_obs::sched_gauge`], so they appear in every snapshot and in
//! the documented catalogue but are **outside** the value-determinism
//! contract — dispatch counts and wakeups legitimately depend on the
//! thread count and scheduling. `MetricsSnapshot::without_sched()`
//! strips them for bitwise cross-thread-count comparisons.

use tinyadc_obs::{LazyCounter, LazyGauge};

/// Tasks handed to the pool's shared queue by parallel dispatches
/// (serial fast paths dispatch nothing and add nothing).
pub(crate) static TASKS_DISPATCHED: LazyCounter =
    LazyCounter::new_sched("par.pool.tasks_dispatched");

/// Condvar wakeups observed by pool workers (including spurious ones
/// and wakeups that only reveal a cap shrink).
pub(crate) static WORKER_WAKEUPS: LazyCounter = LazyCounter::new_sched("par.pool.worker_wakeups");

/// Task-queue depth at the most recent parallel dispatch
/// (last-write-wins).
pub(crate) static QUEUE_DEPTH: LazyGauge = LazyGauge::new_sched("par.pool.queue_depth");

/// Registers all pool metrics (idempotent, a few atomic no-ops after the
/// first call) so the documented catalogue matches the registry even in
/// runs where every helper takes the serial fast path.
pub(crate) fn touch() {
    TASKS_DISPATCHED.add(0);
    WORKER_WAKEUPS.add(0);
    let _ = QUEUE_DEPTH.get();
}
