//! Root crate for the TinyADC reproduction workspace: hosts the runnable
//! examples under `examples/` and the cross-crate integration tests under
//! `tests/`. Re-exports the member crates for convenience.

pub use tinyadc;
pub use tinyadc_hw;
pub use tinyadc_nn;
pub use tinyadc_prune;
pub use tinyadc_tensor;
pub use tinyadc_xbar;
